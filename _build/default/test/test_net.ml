open Peering_net

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Ipv4 *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Some a -> check Alcotest.string "roundtrip" s (Ipv4.to_string a)
      | None -> Alcotest.failf "failed to parse %s" s)
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "184.164.224.0"; "1.2.3.4" ]

let test_ipv4_invalid () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "reject %S" s) true
        (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "1..2.3"; "1.2.3.4 ";
      " 1.2.3.4"; "1.2.3.-4"; "01x.2.3.4" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 192 168 1 42 in
  check Alcotest.string "octets" "192.168.1.42" (Ipv4.to_string a);
  let w, x, y, z = Ipv4.to_octets a in
  check Alcotest.(list int) "to_octets" [ 192; 168; 1; 42 ] [ w; x; y; z ]

let test_ipv4_bit () =
  let a = Ipv4.of_string_exn "128.0.0.1" in
  check Alcotest.bool "msb" true (Ipv4.bit a 0);
  check Alcotest.bool "bit1" false (Ipv4.bit a 1);
  check Alcotest.bool "lsb" true (Ipv4.bit a 31)

let test_ipv4_arith () =
  let a = Ipv4.of_string_exn "10.0.0.255" in
  check Alcotest.string "succ" "10.0.1.0" (Ipv4.to_string (Ipv4.succ a));
  check Alcotest.string "add" "10.0.2.4"
    (Ipv4.to_string (Ipv4.add a 261));
  check Alcotest.string "wrap" "0.0.0.0"
    (Ipv4.to_string (Ipv4.succ (Ipv4.of_string_exn "255.255.255.255")))

(* ------------------------------------------------------------------ *)
(* Prefix *)

let test_prefix_parse () =
  let p = Prefix.of_string_exn "184.164.224.0/19" in
  check Alcotest.int "len" 19 (Prefix.len p);
  check Alcotest.string "str" "184.164.224.0/19" (Prefix.to_string p);
  (* host bits cleared *)
  let q = Prefix.of_string_exn "10.1.2.3/8" in
  check Alcotest.string "normalised" "10.0.0.0/8" (Prefix.to_string q);
  (* bare address is /32 *)
  let r = Prefix.of_string_exn "1.2.3.4" in
  check Alcotest.int "host len" 32 (Prefix.len r)

let test_prefix_mem () =
  let p = Prefix.of_string_exn "184.164.224.0/19" in
  check Alcotest.bool "first" true
    (Prefix.mem (Ipv4.of_string_exn "184.164.224.0") p);
  check Alcotest.bool "last" true
    (Prefix.mem (Ipv4.of_string_exn "184.164.255.255") p);
  check Alcotest.bool "below" false
    (Prefix.mem (Ipv4.of_string_exn "184.164.223.255") p);
  check Alcotest.bool "above" false
    (Prefix.mem (Ipv4.of_string_exn "184.165.0.0") p)

let test_prefix_subsumes () =
  let p19 = Prefix.of_string_exn "184.164.224.0/19" in
  let p24 = Prefix.of_string_exn "184.164.230.0/24" in
  check Alcotest.bool "19 covers 24" true (Prefix.subsumes p19 p24);
  check Alcotest.bool "24 not cover 19" false (Prefix.subsumes p24 p19);
  check Alcotest.bool "self" true (Prefix.subsumes p19 p19);
  check Alcotest.bool "overlaps" true (Prefix.overlaps p24 p19)

let test_prefix_split () =
  let p = Prefix.of_string_exn "10.0.0.0/8" in
  match Prefix.split p with
  | Some (lo, hi) ->
    check Alcotest.string "lo" "10.0.0.0/9" (Prefix.to_string lo);
    check Alcotest.string "hi" "10.128.0.0/9" (Prefix.to_string hi)
  | None -> Alcotest.fail "split failed"

let test_prefix_subprefixes () =
  let p = Prefix.of_string_exn "184.164.224.0/19" in
  let subs = Prefix.subprefixes p 24 in
  check Alcotest.int "count" 32 (List.length subs);
  check Alcotest.string "first" "184.164.224.0/24"
    (Prefix.to_string (List.hd subs));
  check Alcotest.string "last" "184.164.255.0/24"
    (Prefix.to_string (List.nth subs 31));
  check Alcotest.string "nth matches list" "184.164.229.0/24"
    (Prefix.to_string (Prefix.nth_subprefix p 24 5))

let test_prefix_size () =
  check Alcotest.int "/19" 8192 (Prefix.size (Prefix.of_string_exn "10.0.0.0/19"));
  check Alcotest.int "/32" 1 (Prefix.size (Prefix.of_string_exn "10.0.0.1/32"))

(* ------------------------------------------------------------------ *)
(* Prefix_trie *)

let trie_of l =
  Prefix_trie.of_list
    (List.map (fun s -> (Prefix.of_string_exn s, s)) l)

let test_trie_exact () =
  let t = trie_of [ "10.0.0.0/8"; "10.0.0.0/16"; "192.168.0.0/16" ] in
  check Alcotest.(option string) "find /8" (Some "10.0.0.0/8")
    (Prefix_trie.find (Prefix.of_string_exn "10.0.0.0/8") t);
  check Alcotest.(option string) "find /16" (Some "10.0.0.0/16")
    (Prefix_trie.find (Prefix.of_string_exn "10.0.0.0/16") t);
  check Alcotest.(option string) "missing" None
    (Prefix_trie.find (Prefix.of_string_exn "10.0.0.0/12") t);
  check Alcotest.int "cardinal" 3 (Prefix_trie.cardinal t)

let test_trie_lpm () =
  let t = trie_of [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] in
  let lpm a =
    Option.map snd (Prefix_trie.longest_match (Ipv4.of_string_exn a) t)
  in
  check Alcotest.(option string) "most specific" (Some "10.1.2.0/24")
    (lpm "10.1.2.3");
  check Alcotest.(option string) "mid" (Some "10.1.0.0/16") (lpm "10.1.3.1");
  check Alcotest.(option string) "least" (Some "10.0.0.0/8") (lpm "10.2.0.1");
  check Alcotest.(option string) "none" None (lpm "11.0.0.1")

let test_trie_remove () =
  let t = trie_of [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] in
  let t = Prefix_trie.remove (Prefix.of_string_exn "10.1.0.0/16") t in
  check Alcotest.int "cardinal" 2 (Prefix_trie.cardinal t);
  check
    Alcotest.(option string)
    "lpm falls back" (Some "10.0.0.0/8")
    (Option.map snd
       (Prefix_trie.longest_match (Ipv4.of_string_exn "10.1.3.1") t));
  (* removing a non-existent prefix is a no-op *)
  let t2 = Prefix_trie.remove (Prefix.of_string_exn "99.0.0.0/8") t in
  check Alcotest.int "noop remove" 2 (Prefix_trie.cardinal t2)

let test_trie_default_route () =
  let t = trie_of [ "0.0.0.0/0"; "10.0.0.0/8" ] in
  let lpm a =
    Option.map snd (Prefix_trie.longest_match (Ipv4.of_string_exn a) t)
  in
  check Alcotest.(option string) "default" (Some "0.0.0.0/0") (lpm "8.8.8.8");
  check Alcotest.(option string) "specific" (Some "10.0.0.0/8") (lpm "10.9.9.9")

let test_trie_covered () =
  let t = trie_of [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "11.0.0.0/8" ] in
  let covered =
    Prefix_trie.covered (Prefix.of_string_exn "10.1.0.0/16") t |> List.map snd
  in
  check Alcotest.(list string) "covered" [ "10.1.0.0/16"; "10.1.2.0/24" ] covered

let test_trie_update () =
  let t = Prefix_trie.empty in
  let p = Prefix.of_string_exn "10.0.0.0/8" in
  let t = Prefix_trie.update p (fun _ -> Some 1) t in
  let t = Prefix_trie.update p (Option.map succ) t in
  check Alcotest.(option int) "updated" (Some 2) (Prefix_trie.find p t);
  let t = Prefix_trie.update p (fun _ -> None) t in
  check Alcotest.bool "deleted" true (Prefix_trie.is_empty t)

(* QCheck: trie LPM agrees with a naive linear scan. *)
let arbitrary_prefix =
  QCheck.make
    ~print:(fun p -> Prefix.to_string p)
    QCheck.Gen.(
      let* len = int_range 4 32 in
      let* addr = int_range 0 0xFFFFFFF in
      return (Prefix.make (Ipv4.of_int (addr * 16)) len))

let naive_lpm addr entries =
  List.filter (fun (p, _) -> Prefix.mem addr p) entries
  |> List.sort (fun (p, _) (q, _) -> Int.compare (Prefix.len q) (Prefix.len p))
  |> function
  | [] -> None
  | (p, v) :: _ -> Some (Prefix.len p, (p, v))

let prop_lpm_matches_naive =
  QCheck.Test.make ~name:"trie LPM = naive scan" ~count:300
    QCheck.(pair (small_list arbitrary_prefix) (int_bound 0xFFFFFF))
    (fun (prefixes, addr_seed) ->
      let entries =
        List.mapi (fun i p -> (p, i)) (List.sort_uniq Prefix.compare prefixes)
      in
      let trie = Prefix_trie.of_list entries in
      let addr = Ipv4.of_int (addr_seed * 256) in
      match (Prefix_trie.longest_match addr trie, naive_lpm addr entries) with
      | None, None -> true
      | Some (p, _), Some (len, _) -> Prefix.len p = len
      | Some _, None | None, Some _ -> false)

let prop_trie_roundtrip =
  QCheck.Test.make ~name:"trie to_list/of_list roundtrip" ~count:200
    QCheck.(small_list arbitrary_prefix)
    (fun prefixes ->
      let entries =
        List.map (fun p -> (p, Prefix.to_string p))
          (List.sort_uniq Prefix.compare prefixes)
      in
      let trie = Prefix_trie.of_list entries in
      Prefix_trie.to_list trie = entries)

let prop_trie_remove_all =
  QCheck.Test.make ~name:"removing all keys empties trie" ~count:200
    QCheck.(small_list arbitrary_prefix)
    (fun prefixes ->
      let uniq = List.sort_uniq Prefix.compare prefixes in
      let trie = Prefix_trie.of_list (List.map (fun p -> (p, ())) uniq) in
      let emptied =
        List.fold_left (fun t p -> Prefix_trie.remove p t) trie uniq
      in
      Prefix_trie.is_empty emptied)

(* ------------------------------------------------------------------ *)
(* Prefix_pool *)

let test_pool_alloc_free () =
  let supply = Prefix.of_string_exn "184.164.224.0/19" in
  let pool = Prefix_pool.create ~alloc_len:24 [ supply ] in
  check Alcotest.int "capacity" 32 (Prefix_pool.capacity pool);
  match Prefix_pool.alloc pool with
  | None -> Alcotest.fail "alloc failed"
  | Some (p, pool) ->
    check Alcotest.string "lowest block" "184.164.224.0/24" (Prefix.to_string p);
    check Alcotest.int "available" 31 (Prefix_pool.available pool);
    (match Prefix_pool.free p pool with
    | Ok pool -> (
      check Alcotest.int "freed" 32 (Prefix_pool.available pool);
      match Prefix_pool.free p pool with
      | Error `Not_allocated -> ()
      | Ok _ -> Alcotest.fail "double free should fail")
    | Error `Not_allocated -> Alcotest.fail "free failed")

let test_pool_exhaustion () =
  let supply = Prefix.of_string_exn "10.0.0.0/30" in
  let pool = Prefix_pool.create ~alloc_len:32 [ supply ] in
  let rec drain pool n =
    match Prefix_pool.alloc pool with
    | Some (_, pool) -> drain pool (n + 1)
    | None -> n
  in
  check Alcotest.int "all blocks" 4 (drain pool 0)

let test_pool_disjoint () =
  let supply = Prefix.of_string_exn "10.0.0.0/24" in
  let pool = Prefix_pool.create ~alloc_len:26 [ supply ] in
  let rec take pool acc =
    match Prefix_pool.alloc pool with
    | Some (p, pool) -> take pool (p :: acc)
    | None -> List.rev acc
  in
  let blocks = take pool [] in
  check Alcotest.int "count" 4 (List.length blocks);
  List.iteri
    (fun i p ->
      List.iteri
        (fun j q ->
          if i < j then
            check Alcotest.bool "disjoint" false (Prefix.overlaps p q))
        blocks)
    blocks

let test_pool_donation () =
  let pool =
    Prefix_pool.create ~alloc_len:24 [ Prefix.of_string_exn "184.164.224.0/19" ]
  in
  let pool = Prefix_pool.add_supply (Prefix.of_string_exn "198.51.100.0/24") pool in
  check Alcotest.int "extra capacity" 33 (Prefix_pool.capacity pool);
  check Alcotest.bool "owns donated" true
    (Prefix_pool.mem_supply (Prefix.of_string_exn "198.51.100.0/24") pool);
  check Alcotest.bool "not foreign" false
    (Prefix_pool.mem_supply (Prefix.of_string_exn "8.8.8.0/24") pool);
  (* overlapping donation rejected *)
  match
    Prefix_pool.add_supply (Prefix.of_string_exn "184.164.230.0/24") pool
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping supply accepted"

(* ------------------------------------------------------------------ *)
(* Asn / Country *)

let test_asn_ranges () =
  check Alcotest.bool "private 16-bit" true (Asn.is_private (Asn.of_int 64512));
  check Alcotest.bool "private high" true (Asn.is_private (Asn.of_int 65534));
  check Alcotest.bool "public" false (Asn.is_private (Asn.of_int 47065));
  check Alcotest.bool "private 32-bit" true
    (Asn.is_private (Asn.of_int 4200000000));
  check Alcotest.bool "reserved zero" true (Asn.is_reserved (Asn.of_int 0));
  check Alcotest.bool "as-trans" true (Asn.is_reserved (Asn.of_int 23456))

let test_country () =
  check Alcotest.bool "parse" true (Country.of_string "nl" <> None);
  check Alcotest.bool "reject" true (Country.of_string "NLD" = None);
  check Alcotest.string "upcase" "NL"
    (Country.to_string (Country.of_string_exn "nl"));
  let distinct =
    Array.to_list Country.pool |> List.sort_uniq Country.compare
  in
  check Alcotest.int "pool distinct" (Array.length Country.pool)
    (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Ipv6 / Prefix6 *)

let test_ipv6_parse_print () =
  List.iter
    (fun (input, canonical) ->
      match Ipv6.of_string input with
      | Some a -> check Alcotest.string input canonical (Ipv6.to_string a)
      | None -> Alcotest.failf "failed to parse %s" input)
    [ ("2804:269c::", "2804:269c::");
      ("2804:269C:0:0:0:0:0:1", "2804:269c::1");
      ("::", "::");
      ("::1", "::1");
      ("1::", "1::");
      ("2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1") (* leftmost-longest run *);
      ("fe80:0:0:0:0:0:0:1", "fe80::1");
      ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8");
      ("0:0:1:0:0:0:1:0", "0:0:1::1:0") ]

let test_ipv6_invalid () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "reject %S" s) true
        (Ipv6.of_string s = None))
    [ ""; ":::"; "1:2:3"; "1:2:3:4:5:6:7:8:9"; "2001:db8::1::2"; "g::1";
      "12345::" ]

let test_ipv6_bits_order () =
  let a = Ipv6.of_string_exn "8000::1" in
  check Alcotest.bool "msb" true (Ipv6.bit a 0);
  check Alcotest.bool "bit 1" false (Ipv6.bit a 1);
  check Alcotest.bool "lsb" true (Ipv6.bit a 127);
  let b = Ipv6.of_string_exn "::1:0:0:0:0" in
  (* group 3 (bits 48-63) = 1 -> bit 63 set *)
  check Alcotest.bool "bit 63" true (Ipv6.bit b 63)

let test_ipv6_add_carry () =
  let a = Ipv6.of_string_exn "::ffff:ffff:ffff:ffff" in
  let b = Ipv6.add a 1L in
  check Alcotest.string "carry into hi" "0:0:0:1::" (Ipv6.to_string b)

let prop_ipv6_roundtrip =
  QCheck.Test.make ~name:"ipv6 to_string/of_string roundtrip" ~count:300
    QCheck.(pair int64 int64)
    (fun (hi, lo) ->
      let a = Ipv6.make hi lo in
      match Ipv6.of_string (Ipv6.to_string a) with
      | Some b -> Ipv6.equal a b
      | None -> false)

let test_prefix6_ops () =
  let p = Prefix6.of_string_exn "2804:269c::/32" in
  check Alcotest.string "render" "2804:269c::/32" (Prefix6.to_string p);
  check Alcotest.bool "mem inside" true
    (Prefix6.mem (Ipv6.of_string_exn "2804:269c:42::1") p);
  check Alcotest.bool "mem outside" false
    (Prefix6.mem (Ipv6.of_string_exn "2804:269d::1") p);
  let q = Prefix6.of_string_exn "2804:269c:1::/48" in
  check Alcotest.bool "subsumes" true (Prefix6.subsumes p q);
  check Alcotest.bool "not reversed" false (Prefix6.subsumes q p);
  (* normalisation clears host bits *)
  let r = Prefix6.of_string_exn "2804:269c::dead:beef/32" in
  check Alcotest.bool "normalised" true (Prefix6.equal p r);
  (* nth subprefix *)
  check Alcotest.string "nth /48" "2804:269c:5::/48"
    (Prefix6.to_string (Prefix6.nth_subprefix p 48 5))

let test_prefix6_pool () =
  let supply = Prefix6.of_string_exn "2804:269c::/32" in
  let pool = Prefix6.Pool.create ~alloc_len:48 supply in
  match Prefix6.Pool.alloc pool with
  | None -> Alcotest.fail "alloc failed"
  | Some (p1, pool) -> (
    check Alcotest.string "first block" "2804:269c::/48" (Prefix6.to_string p1);
    match Prefix6.Pool.alloc pool with
    | None -> Alcotest.fail "second alloc failed"
    | Some (p2, pool) ->
      check Alcotest.string "second block" "2804:269c:1::/48"
        (Prefix6.to_string p2);
      check Alcotest.bool "disjoint" false
        (Prefix6.subsumes p1 p2 || Prefix6.subsumes p2 p1);
      (* free and re-alloc reuses the freed block *)
      (match Prefix6.Pool.free p1 pool with
      | Ok pool -> (
        match Prefix6.Pool.alloc pool with
        | Some (p3, _) ->
          check Alcotest.bool "freed block reused" true (Prefix6.equal p1 p3)
        | None -> Alcotest.fail "realloc failed")
      | Error `Not_allocated -> Alcotest.fail "free failed");
      check Alcotest.bool "supply ownership" true
        (Prefix6.Pool.mem_supply p2 pool))

let () =
  Alcotest.run "net"
    [ ( "ipv4",
        [ tc "roundtrip" `Quick test_ipv4_roundtrip;
          tc "invalid" `Quick test_ipv4_invalid;
          tc "octets" `Quick test_ipv4_octets;
          tc "bits" `Quick test_ipv4_bit;
          tc "arithmetic" `Quick test_ipv4_arith
        ] );
      ( "prefix",
        [ tc "parse" `Quick test_prefix_parse;
          tc "mem" `Quick test_prefix_mem;
          tc "subsumes" `Quick test_prefix_subsumes;
          tc "split" `Quick test_prefix_split;
          tc "subprefixes" `Quick test_prefix_subprefixes;
          tc "size" `Quick test_prefix_size
        ] );
      ( "trie",
        [ tc "exact" `Quick test_trie_exact;
          tc "lpm" `Quick test_trie_lpm;
          tc "remove" `Quick test_trie_remove;
          tc "default route" `Quick test_trie_default_route;
          tc "covered" `Quick test_trie_covered;
          tc "update" `Quick test_trie_update;
          QCheck_alcotest.to_alcotest prop_lpm_matches_naive;
          QCheck_alcotest.to_alcotest prop_trie_roundtrip;
          QCheck_alcotest.to_alcotest prop_trie_remove_all
        ] );
      ( "pool",
        [ tc "alloc/free" `Quick test_pool_alloc_free;
          tc "exhaustion" `Quick test_pool_exhaustion;
          tc "disjoint" `Quick test_pool_disjoint;
          tc "donation" `Quick test_pool_donation
        ] );
      ( "asn+country",
        [ tc "asn ranges" `Quick test_asn_ranges;
          tc "country" `Quick test_country
        ] );
      ( "ipv6",
        [ tc "parse/print" `Quick test_ipv6_parse_print;
          tc "invalid" `Quick test_ipv6_invalid;
          tc "bit order" `Quick test_ipv6_bits_order;
          tc "add carry" `Quick test_ipv6_add_carry;
          QCheck_alcotest.to_alcotest prop_ipv6_roundtrip;
          tc "prefix ops" `Quick test_prefix6_ops;
          tc "pool" `Quick test_prefix6_pool
        ] )
    ]
