open Peering_net
open Peering_emu
open Peering_dataplane
module Engine = Peering_sim.Engine
module Topology_zoo = Peering_topo.Topology_zoo

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Igp *)

let square () =
  (* a - b - d and a - c - d, with a heavy a-c link *)
  let g = Igp.create () in
  Igp.add_link g "a" "b" ~weight:1;
  Igp.add_link g "b" "d" ~weight:1;
  Igp.add_link g "a" "c" ~weight:5;
  Igp.add_link g "c" "d" ~weight:1;
  g

let test_igp_shortest () =
  let g = square () in
  check Alcotest.(option string) "a->d via b" (Some "b")
    (Igp.next_hop g ~src:"a" ~dst:"d");
  check Alcotest.(option (list string)) "path" (Some [ "a"; "b"; "d" ])
    (Igp.path g ~src:"a" ~dst:"d");
  check Alcotest.(list (pair string int)) "distances"
    [ ("a", 0); ("b", 1); ("c", 3); ("d", 2) ]
    (Igp.distances g "a")

let test_igp_reroute_on_failure () =
  let g = square () in
  Igp.remove_link g "b" "d";
  check Alcotest.(option string) "a->d now via c" (Some "c")
    (Igp.next_hop g ~src:"a" ~dst:"d");
  Igp.remove_link g "c" "d";
  check Alcotest.(option string) "unreachable" None
    (Igp.next_hop g ~src:"a" ~dst:"d")

let test_igp_self () =
  let g = square () in
  check Alcotest.(option string) "self" None (Igp.next_hop g ~src:"a" ~dst:"a")

(* ------------------------------------------------------------------ *)
(* Mininext *)

let build_simple () =
  let e = Engine.create () in
  let f = Forwarder.create e in
  let emu = Mininext.create e f ~name:"test-as" ~asn:(asn 65001) () in
  let _a = Mininext.add_pop emu "alpha" in
  let _b = Mininext.add_pop emu "beta" in
  let _c = Mininext.add_pop emu "gamma" in
  Mininext.link emu "alpha" "beta" ();
  Mininext.link emu "beta" "gamma" ();
  (e, f, emu)

let test_mininext_ibgp_mesh () =
  let e, _f, emu = build_simple () in
  Mininext.start emu;
  check Alcotest.int "3 pops" 3 (Mininext.n_pops emu);
  check Alcotest.int "full mesh sessions" 3 (Mininext.n_ibgp_sessions emu);
  Engine.run ~until:10.0 e;
  (* originate at alpha; all pops learn it over iBGP *)
  Mininext.originate_at emu "alpha" (pfx "184.164.224.0/24");
  Engine.run ~until:20.0 e;
  List.iter
    (fun name ->
      check Alcotest.int (name ^ " has route") 1 (Mininext.routes_at emu name))
    [ "alpha"; "beta"; "gamma" ]

let test_mininext_dataplane () =
  let e, f, emu = build_simple () in
  Mininext.start emu;
  Engine.run ~until:10.0 e;
  Mininext.originate_at emu "gamma" (pfx "184.164.230.0/24");
  Engine.run ~until:20.0 e;
  Mininext.sync_fibs emu;
  (* alpha can now reach the prefix across beta (next-hop-self + IGP) *)
  let alpha = Mininext.pop_exn emu "alpha" in
  let gamma = Mininext.pop_exn emu "gamma" in
  let got = ref 0 in
  Forwarder.on_deliver f (Mininext.node_id gamma) (fun _ -> incr got);
  Forwarder.inject f
    ~at:(Mininext.node_id alpha)
    (Packet.make
       ~src:(Mininext.loopback alpha)
       ~dst:(ip "184.164.230.77") ());
  Engine.run ~until:25.0 e;
  check Alcotest.int "traffic crossed the emulated AS" 1 !got

let test_mininext_he_backbone () =
  (* §4.2: emulate the HE backbone and converge. *)
  let e = Engine.create () in
  let f = Forwarder.create e in
  let emu =
    Mininext.of_topology e f ~asn:(asn 6939) Topology_zoo.hurricane_electric
  in
  check Alcotest.int "24 pops" 24 (Mininext.n_pops emu);
  Mininext.start emu;
  check Alcotest.int "mesh size" (24 * 23 / 2) (Mininext.n_ibgp_sessions emu);
  Engine.run ~until:60.0 e;
  (* every PoP originates a prefix, as in the paper *)
  List.iteri
    (fun i p ->
      Mininext.originate_at emu (Mininext.pop_name p)
        (Prefix.make (Ipv4.of_octets 184 164 (224 + (i mod 32)) 0) 27))
    (List.filteri (fun i _ -> i < 8) (Mininext.pops emu));
  Engine.run ~until:200.0 e;
  (* all pops converge on all 8 prefixes *)
  List.iter
    (fun p ->
      check Alcotest.int
        (Mininext.pop_name p ^ " table")
        8
        (Mininext.routes_at emu (Mininext.pop_name p)))
    (Mininext.pops emu);
  check Alcotest.bool "memory measured" true (Mininext.memory_words emu > 0);
  check Alcotest.bool "container model sane" true
    (Mininext.container_model_bytes emu > 24 * 6_000_000)

let test_mininext_igp_reroute_resync () =
  (* after an intradomain link change, sync_fibs re-steers traffic *)
  let e, f, emu = build_simple () in
  Mininext.link emu "alpha" "gamma" ~weight:10 () (* backup path *);
  Mininext.start emu;
  Engine.run ~until:10.0 e;
  Mininext.originate_at emu "gamma" (pfx "184.164.230.0/24");
  Engine.run ~until:20.0 e;
  Mininext.sync_fibs emu;
  let alpha = Mininext.pop_exn emu "alpha" in
  let gamma = Mininext.pop_exn emu "gamma" in
  let via_beta = ref 0 in
  let beta = Mininext.pop_exn emu "beta" in
  Forwarder.set_ingress_filter f (Mininext.node_id beta) (fun _ ->
      incr via_beta;
      true);
  let got = ref 0 in
  Forwarder.on_deliver f (Mininext.node_id gamma) (fun _ -> incr got);
  let send () =
    Forwarder.inject f
      ~at:(Mininext.node_id alpha)
      (Packet.make ~src:(Mininext.loopback alpha) ~dst:(ip "184.164.230.1") ());
    Engine.run_for e 5.0
  in
  send ();
  check Alcotest.int "delivered via beta (weight 2 < 10)" 1 !got;
  check Alcotest.bool "crossed beta" true (!via_beta > 0);
  (* fail the alpha-beta link; IGP falls back to the direct link *)
  Igp.remove_link (Mininext.igp emu) "alpha" "beta";
  Mininext.sync_fibs emu;
  let beta_before = !via_beta in
  send ();
  check Alcotest.int "still delivered" 2 !got;
  check Alcotest.int "no longer via beta" beta_before !via_beta

let test_mininext_external_gateway_fib () =
  let e, f, emu = build_simple () in
  Mininext.start emu;
  Engine.run ~until:10.0 e;
  (* a mux session at gamma brings an external route *)
  let mux =
    Peering_router.Router.create e ~asn:(asn 47065)
      ~router_id:(ip "100.65.9.1") ()
  in
  let gamma = Mininext.pop_exn emu "gamma" in
  ignore
    (Peering_router.Router.connect e
       (mux, ip "100.65.9.1")
       (Mininext.router gamma, Mininext.loopback gamma));
  Engine.run_for e 10.0;
  Peering_router.Router.originate mux (pfx "20.7.0.0/16");
  Engine.run_for e 30.0;
  check Alcotest.int "external route at alpha" 1
    (Mininext.routes_at emu "alpha");
  Forwarder.add_node f "ext";
  Forwarder.add_address f "ext" (ip "20.7.0.1");
  Forwarder.set_route f "ext" (pfx "20.7.0.0/16") Fib.Local;
  Mininext.external_gateway emu ~pop:"gamma" ~peer_addr:(ip "100.65.9.1")
    ~node:"ext";
  Mininext.sync_fibs emu;
  let got = ref 0 in
  Forwarder.on_deliver f "ext" (fun _ -> incr got);
  let alpha = Mininext.pop_exn emu "alpha" in
  Forwarder.inject f
    ~at:(Mininext.node_id alpha)
    (Packet.make ~src:(Mininext.loopback alpha) ~dst:(ip "20.7.0.9") ());
  Engine.run_for e 5.0;
  check Alcotest.int "external destination reached from interior PoP" 1 !got

let test_mininext_abilene () =
  let e = Engine.create () in
  let f = Forwarder.create e in
  let emu =
    Mininext.of_topology e f ~asn:(asn 11537)
      Peering_topo.Topology_zoo.abilene
  in
  Mininext.start emu;
  Engine.run ~until:30.0 e;
  Mininext.originate_at emu "Seattle" (pfx "184.164.250.0/24");
  Engine.run_for e 60.0;
  List.iter
    (fun p ->
      check Alcotest.int (Mininext.pop_name p) 1
        (Mininext.routes_at emu (Mininext.pop_name p)))
    (Mininext.pops emu)

let test_mininext_duplicate_pop () =
  let e = Engine.create () in
  let f = Forwarder.create e in
  let emu = Mininext.create e f ~name:"dup" ~asn:(asn 65001) () in
  ignore (Mininext.add_pop emu "x");
  match Mininext.add_pop emu "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate pop accepted"

let () =
  Alcotest.run "emu"
    [ ( "igp",
        [ tc "shortest" `Quick test_igp_shortest;
          tc "reroute" `Quick test_igp_reroute_on_failure;
          tc "self" `Quick test_igp_self
        ] );
      ( "mininext",
        [ tc "ibgp mesh" `Quick test_mininext_ibgp_mesh;
          tc "dataplane" `Quick test_mininext_dataplane;
          tc "HE backbone" `Slow test_mininext_he_backbone;
          tc "igp reroute + resync" `Quick test_mininext_igp_reroute_resync;
          tc "external gateway" `Quick test_mininext_external_gateway_fib;
          tc "abilene" `Quick test_mininext_abilene;
          tc "duplicate pop" `Quick test_mininext_duplicate_pop
        ] )
    ]
