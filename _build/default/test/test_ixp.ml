open Peering_net
open Peering_bgp
open Peering_ixp
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let mk_route ?(communities = []) p origin =
  Route.make
    (pfx p)
    (Attrs.make
       ~as_path:(As_path.of_asns [ asn origin ])
       ~communities ~next_hop:(ip "192.0.2.1") ())

(* ------------------------------------------------------------------ *)
(* Route server *)

let rs_with_members members =
  let rs = Route_server.create () in
  List.iter (fun m -> Route_server.connect rs (asn m)) members;
  rs

let test_rs_redistribution () =
  let rs = rs_with_members [ 10; 20; 30 ] in
  let deliveries = Route_server.announce rs ~from:(asn 10) (mk_route "10.1.0.0/16" 10) in
  check Alcotest.(list int) "everyone but sender"
    [ 20; 30 ]
    (List.map (fun (m, _) -> Asn.to_int m) deliveries);
  check Alcotest.int "retained" 2 (Route_server.route_count rs);
  check Alcotest.int "member 20 holds it" 1
    (List.length (Route_server.routes_for rs (asn 20)))

let test_rs_transparent () =
  (* the server must not insert its own ASN in the path *)
  let rs = rs_with_members [ 10; 20 ] in
  match Route_server.announce rs ~from:(asn 10) (mk_route "10.1.0.0/16" 10) with
  | [ (_, r) ] ->
    check Alcotest.(list int) "path untouched" [ 10 ]
      (List.map Asn.to_int (As_path.to_asns r.Route.attrs.Attrs.as_path))
  | _ -> Alcotest.fail "expected one delivery"

let test_rs_block_community () =
  let rs = rs_with_members [ 10; 20; 30 ] in
  (* 0:20 = don't send to member 20 *)
  let r = mk_route ~communities:[ Community.make 0 20 ] "10.1.0.0/16" 10 in
  let deliveries = Route_server.announce rs ~from:(asn 10) r in
  check Alcotest.(list int) "20 excluded" [ 30 ]
    (List.map (fun (m, _) -> Asn.to_int m) deliveries)

let test_rs_whitelist_community () =
  let rs = rs_with_members [ 10; 20; 30 ] in
  (* 0:0 blocks all, 6777:30 whitelists member 30 *)
  let r =
    mk_route
      ~communities:[ Community.make 0 0; Community.make 6777 30 ]
      "10.1.0.0/16" 10
  in
  let deliveries = Route_server.announce rs ~from:(asn 10) r in
  check Alcotest.(list int) "only 30" [ 30 ]
    (List.map (fun (m, _) -> Asn.to_int m) deliveries);
  (* control communities scrubbed before redistribution *)
  match deliveries with
  | [ (_, out) ] ->
    check Alcotest.int "scrubbed" 0 (List.length out.Route.attrs.Attrs.communities)
  | _ -> Alcotest.fail "one delivery expected"

let test_rs_withdraw () =
  let rs = rs_with_members [ 10; 20; 30 ] in
  ignore (Route_server.announce rs ~from:(asn 10) (mk_route "10.1.0.0/16" 10));
  let w = Route_server.withdraw rs ~from:(asn 10) (pfx "10.1.0.0/16") in
  check Alcotest.int "withdrawals" 2 (List.length w);
  check Alcotest.int "tables empty" 0 (Route_server.route_count rs);
  check Alcotest.int "idempotent" 0
    (List.length (Route_server.withdraw rs ~from:(asn 10) (pfx "10.1.0.0/16")))

let test_rs_disconnect () =
  let rs = rs_with_members [ 10; 20 ] in
  ignore (Route_server.announce rs ~from:(asn 10) (mk_route "10.1.0.0/16" 10));
  let w = Route_server.disconnect rs (asn 10) in
  check Alcotest.int "implicit withdrawals" 1 (List.length w);
  check Alcotest.int "members" 1 (Route_server.n_members rs)

(* ------------------------------------------------------------------ *)
(* Fabric *)

let test_fabric_census () =
  let rng = Rng.create 5 in
  let f = Fabric.create ~name:"TEST-IX" ~country:Country.nl ~rng () in
  List.iteri
    (fun i policy ->
      Fabric.add_member f ~policy (asn (100 + i)))
    [ Peering_policy.Open; Peering_policy.Open; Peering_policy.Closed;
      Peering_policy.Case_by_case; Peering_policy.Unlisted ];
  Fabric.add_member f ~uses_route_server:true ~policy:Peering_policy.Open
    (asn 200);
  check Alcotest.int "members" 6 (Fabric.n_members f);
  check Alcotest.(list int) "rs users" [ 200 ]
    (List.map Asn.to_int (Fabric.route_server_users f));
  let census = Fabric.policy_census f in
  let count p = List.assoc p census in
  check Alcotest.int "open" 2 (count Peering_policy.Open);
  check Alcotest.int "closed" 1 (count Peering_policy.Closed);
  check Alcotest.int "case" 1 (count Peering_policy.Case_by_case);
  check Alcotest.int "unlisted" 1 (count Peering_policy.Unlisted)

let test_fabric_requests () =
  let rng = Rng.create 5 in
  let f = Fabric.create ~name:"TEST-IX" ~country:Country.nl ~rng () in
  Fabric.add_member f ~policy:Peering_policy.Closed (asn 1);
  (* closed never accepts *)
  (match Fabric.request_peering f ~target:(asn 1) with
  | Fabric.Accepted -> Alcotest.fail "closed member accepted"
  | _ -> ());
  (* responses are sticky *)
  let r1 = Fabric.request_peering f ~target:(asn 1) in
  let r2 = Fabric.request_peering f ~target:(asn 1) in
  check Alcotest.bool "sticky" true (r1 = r2);
  (* open members mostly accept: statistical check over many members *)
  let f2 = Fabric.create ~name:"T2" ~country:Country.nl ~rng () in
  for i = 1 to 200 do
    Fabric.add_member f2 ~policy:Peering_policy.Open (asn i)
  done;
  let accepted =
    List.length
      (List.filter
         (fun i -> Fabric.request_peering f2 ~target:(asn i) = Fabric.Accepted)
         (List.init 200 (fun i -> i + 1)))
  in
  check Alcotest.bool "vast majority accepted" true (accepted > 160);
  check Alcotest.int "bilateral peers tracked" accepted
    (List.length (Fabric.bilateral_peers f2))

(* ------------------------------------------------------------------ *)
(* AMS-IX calibration *)

let world =
  lazy
    (Gen.generate
       { Gen.default_params with
         Gen.n_stub = 1500;
         n_small_transit = 150;
         target_prefixes = 8000
       })

let test_amsix_census () =
  let w = Lazy.force world in
  let rng = Rng.create 42 in
  let f = Amsix.build ~rng w in
  check Alcotest.int "669 members" 669 (Fabric.n_members f);
  check Alcotest.int "554 on route server" 554
    (List.length (Fabric.route_server_users f));
  let census = Fabric.policy_census f in
  let count p = List.assoc p census in
  check Alcotest.int "48 open" 48 (count Peering_policy.Open);
  check Alcotest.int "12 closed" 12 (count Peering_policy.Closed);
  check Alcotest.int "40 case-by-case" 40 (count Peering_policy.Case_by_case);
  check Alcotest.int "15 unlisted" 15 (count Peering_policy.Unlisted)

let test_amsix_member_quality () =
  let w = Lazy.force world in
  let rng = Rng.create 42 in
  let f = Amsix.build ~rng w in
  (* many distinct countries *)
  let countries = Amsix.member_countries f w in
  check Alcotest.bool "tens of countries" true
    (Country.Set.cardinal countries >= 30);
  (* a decent share of the top-100 cone ASes are members *)
  let top100 = Amsix.top_rank_members f w 100 in
  check Alcotest.bool "top-100 represented" true (List.length top100 >= 15)

let () =
  Alcotest.run "ixp"
    [ ( "route-server",
        [ tc "redistribution" `Quick test_rs_redistribution;
          tc "transparent" `Quick test_rs_transparent;
          tc "block community" `Quick test_rs_block_community;
          tc "whitelist community" `Quick test_rs_whitelist_community;
          tc "withdraw" `Quick test_rs_withdraw;
          tc "disconnect" `Quick test_rs_disconnect
        ] );
      ( "fabric",
        [ tc "census" `Quick test_fabric_census;
          tc "requests" `Quick test_fabric_requests
        ] );
      ( "amsix",
        [ tc "census calibration" `Quick test_amsix_census;
          tc "member quality" `Quick test_amsix_member_quality
        ] )
    ]
