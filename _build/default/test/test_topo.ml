open Peering_net
open Peering_topo

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* As_graph *)

let diamond () =
  (* 1 (tier1) over 2 and 3 (transit), both serving stub 4; 2-3 peer. *)
  let g = As_graph.create () in
  List.iter (fun (a, k) -> As_graph.add_as g ~kind:k (asn a))
    [ (1, As_graph.Tier1); (2, As_graph.Small_transit);
      (3, As_graph.Small_transit); (4, As_graph.Stub) ];
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 2);
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 3);
  As_graph.add_edge g (asn 2) Relationship.Peer (asn 3);
  As_graph.add_edge g (asn 2) Relationship.Customer (asn 4);
  As_graph.add_edge g (asn 3) Relationship.Customer (asn 4);
  As_graph.originate g (asn 4) (pfx "10.4.0.0/16");
  g

let test_graph_edges () =
  let g = diamond () in
  check Alcotest.int "ases" 4 (As_graph.n_ases g);
  check Alcotest.int "edges" 5 (As_graph.n_edges g);
  check Alcotest.(list int) "customers of 2" [ 4 ]
    (List.map Asn.to_int (As_graph.customers g (asn 2)));
  check Alcotest.(list int) "providers of 4" [ 2; 3 ]
    (List.map Asn.to_int (As_graph.providers g (asn 4)));
  check Alcotest.(list int) "peers of 3" [ 2 ]
    (List.map Asn.to_int (As_graph.peers_of g (asn 3)));
  (* inverse view *)
  check Alcotest.bool "relationship inverse" true
    (As_graph.relationship g (asn 4) (asn 2) = Some Relationship.Provider);
  check Alcotest.(option int) "origin index" (Some 4)
    (Option.map Asn.to_int (As_graph.origin_of g (pfx "10.4.0.0/16")))

let test_graph_validation () =
  let g = diamond () in
  (match As_graph.add_edge g (asn 2) Relationship.Peer (asn 3) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate edge accepted");
  (match As_graph.add_as g (asn 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate AS accepted");
  match As_graph.add_edge g (asn 1) Relationship.Peer (asn 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self loop accepted"

(* ------------------------------------------------------------------ *)
(* Relationship / Gao-Rexford export rules *)

let test_export_rules () =
  let open Relationship in
  (* own and customer routes go everywhere *)
  check Alcotest.bool "own->peer" true (exports_to ~learned_from:None Peer);
  check Alcotest.bool "cust->provider" true
    (exports_to ~learned_from:(Some Customer) Provider);
  (* peer/provider routes only to customers *)
  check Alcotest.bool "peer->peer" false (exports_to ~learned_from:(Some Peer) Peer);
  check Alcotest.bool "peer->cust" true
    (exports_to ~learned_from:(Some Peer) Customer);
  check Alcotest.bool "prov->prov" false
    (exports_to ~learned_from:(Some Provider) Provider);
  check Alcotest.bool "prov->cust" true
    (exports_to ~learned_from:(Some Provider) Customer)

(* ------------------------------------------------------------------ *)
(* Propagation *)

let test_propagation_reaches_all () =
  let g = diamond () in
  let r = Propagation.propagate g [ Propagation.announce (asn 4) (pfx "10.4.0.0/16") ] in
  check Alcotest.int "all four reach" 4 (Propagation.reachable_count r);
  (* tier1 gets it via a customer chain *)
  match Propagation.route_at r (asn 1) with
  | Some rt ->
    check Alcotest.bool "customer route at tier1" true
      (rt.Propagation.learned_over = Some Relationship.Customer);
    check Alcotest.int "two hops" 2 (List.length rt.Propagation.path)
  | None -> Alcotest.fail "tier1 unreachable"

let test_propagation_valley_free () =
  (* stub 5 hanging off 2 must NOT give transit to its providers'
     routes; build: 2 also provider of 5; announce from 4. 5 should
     receive (provider route) but 5's other provider link shouldn't
     matter. Key check: a peer route never re-exported to peers. *)
  let g = diamond () in
  As_graph.add_as g ~kind:As_graph.Stub (asn 5);
  As_graph.add_edge g (asn 2) Relationship.Customer (asn 5);
  let r = Propagation.propagate g [ Propagation.announce (asn 4) (pfx "10.4.0.0/16") ] in
  (match Propagation.route_at r (asn 5) with
  | Some rt ->
    check Alcotest.bool "provider route at stub" true
      (rt.Propagation.learned_over = Some Relationship.Provider)
  | None -> Alcotest.fail "stub 5 unreachable");
  (* 2 and 3 prefer their direct customer route over the peer route *)
  List.iter
    (fun a ->
      match Propagation.route_at r (asn a) with
      | Some rt ->
        check Alcotest.bool "customer preferred" true
          (rt.Propagation.learned_over = Some Relationship.Customer);
        check Alcotest.int "one hop" 1 (List.length rt.Propagation.path)
      | None -> Alcotest.fail "transit unreachable")
    [ 2; 3 ]

let test_propagation_prefers_customer_over_peer () =
  (* 3 has both a peer route (via 2) and a provider route (via 1) to a
     prefix originated at 2's customer... build a topology where the
     choice matters: origin at 2 itself. *)
  let g = As_graph.create () in
  List.iter (fun a -> As_graph.add_as g (asn a)) [ 1; 2; 3 ];
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 2);
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 3);
  As_graph.add_edge g (asn 2) Relationship.Peer (asn 3);
  As_graph.originate g (asn 2) (pfx "10.2.0.0/16");
  let r = Propagation.propagate g [ Propagation.announce (asn 2) (pfx "10.2.0.0/16") ] in
  match Propagation.route_at r (asn 3) with
  | Some rt ->
    check Alcotest.bool "peer route preferred over provider" true
      (rt.Propagation.learned_over = Some Relationship.Peer)
  | None -> Alcotest.fail "3 unreachable"

let test_propagation_poisoning () =
  let g = diamond () in
  (* poison AS 2: it must reject the route, traffic flows via 3 *)
  let r =
    Propagation.propagate g
      [ Propagation.announce ~path_suffix:[ asn 2 ] (asn 4) (pfx "10.4.0.0/16") ]
  in
  check Alcotest.bool "poisoned AS has no route" true
    (Propagation.route_at r (asn 2) = None);
  (match Propagation.path_at r (asn 1) with
  | Some path ->
    check Alcotest.bool "tier1 path avoids 2" true
      (not (List.exists (fun a -> Asn.to_int a = 2 && List.length path < 3) path));
    (* path should be 3 :: 4 :: [2] (suffix) *)
    check Alcotest.int "via 3" 3 (Asn.to_int (List.hd path))
  | None -> Alcotest.fail "tier1 unreachable")

let test_propagation_export_to () =
  let g = diamond () in
  (* origin 4 announces only to provider 3 *)
  let r =
    Propagation.propagate g
      [ Propagation.announce
          ~export_to:(Asn.Set.singleton (asn 3))
          (asn 4) (pfx "10.4.0.0/16")
      ]
  in
  (match Propagation.route_at r (asn 2) with
  | Some rt ->
    (* 2 must hear it only indirectly (via peer 3 or provider 1) *)
    check Alcotest.bool "2 not direct" true
      (List.length rt.Propagation.path > 1)
  | None -> ());
  match Propagation.route_at r (asn 3) with
  | Some rt -> check Alcotest.int "3 direct" 1 (List.length rt.Propagation.path)
  | None -> Alcotest.fail "3 should have the route"

let test_propagation_down_as () =
  let g = diamond () in
  let r =
    Propagation.propagate g
      ~down:(Asn.Set.singleton (asn 2))
      [ Propagation.announce (asn 4) (pfx "10.4.0.0/16") ]
  in
  check Alcotest.bool "down AS holds no route" true
    (Propagation.route_at r (asn 2) = None);
  match Propagation.path_at r (asn 1) with
  | Some path ->
    check Alcotest.bool "detour avoids down AS" true
      (not (List.exists (fun a -> Asn.to_int a = 2) path))
  | None -> Alcotest.fail "1 unreachable despite detour"

let test_propagation_anycast_catchment () =
  (* two origins of the same prefix split the graph *)
  let g = As_graph.create () in
  List.iter (fun a -> As_graph.add_as g (asn a)) [ 1; 2; 3; 4; 5; 6 ];
  (* chain: 3 - 1 - 2 - 4 ; origins at 5 (under 3) and 6 (under 4) *)
  As_graph.add_edge g (asn 1) Relationship.Peer (asn 2);
  As_graph.add_edge g (asn 3) Relationship.Customer (asn 5);
  As_graph.add_edge g (asn 4) Relationship.Customer (asn 6);
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 3);
  As_graph.add_edge g (asn 2) Relationship.Customer (asn 4);
  let p = pfx "184.164.224.0/24" in
  let r =
    Propagation.propagate g
      [ Propagation.announce (asn 5) p; Propagation.announce (asn 6) p ]
  in
  let catchment = Propagation.catchment r in
  check Alcotest.int "two catchments" 2 (List.length catchment);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 catchment in
  check Alcotest.int "everyone lands somewhere" 6 total;
  (* 3 goes to 5's side; 4 to 6's side *)
  (match Propagation.route_at r (asn 3) with
  | Some rt -> check Alcotest.int "3 -> ann 0" 0 rt.Propagation.ann_index
  | None -> Alcotest.fail "3 unreachable");
  match Propagation.route_at r (asn 4) with
  | Some rt -> check Alcotest.int "4 -> ann 1" 1 rt.Propagation.ann_index
  | None -> Alcotest.fail "4 unreachable"

let test_propagation_routes_via () =
  let g = diamond () in
  let r = Propagation.propagate g [ Propagation.announce (asn 4) (pfx "10.4.0.0/16") ] in
  let via2 = Propagation.routes_via r (asn 2) in
  let via3 = Propagation.routes_via r (asn 3) in
  (* tier1 picks exactly one of the two transits (deterministic: 2) *)
  check Alcotest.int "someone transits 2 or 3" 1
    (List.length via2 + List.length via3)

(* QCheck: every selected path in a random topology is valley-free. *)
let valley_free graph path =
  (* classify each adjacent pair; valid patterns: up* peer? down* *)
  let rec rels acc = function
    | a :: (b :: _ as rest) -> (
      match As_graph.relationship graph a b with
      | Some r -> rels (r :: acc) rest
      | None -> acc (* poisoned suffix: ignore *))
    | _ -> List.rev acc
  in
  (* walking from the AS toward the origin: Provider = up, Peer = flat,
     Customer = down. After going flat or down, must not go up or flat. *)
  let rec ok seen_top = function
    | [] -> true
    | Relationship.Provider :: rest -> (not seen_top) && ok false rest
    | Relationship.Peer :: rest -> (not seen_top) && ok true rest
    | Relationship.Customer :: rest -> ok true rest
  in
  ok false (rels [] path)

let prop_valley_free =
  QCheck.Test.make ~name:"propagated paths are valley-free" ~count:40
    (QCheck.make (QCheck.Gen.int_range 1 10_000))
    (fun seed ->
      let params =
        { Gen.seed;
          n_tier1 = 3;
          n_large_transit = 5;
          n_small_transit = 15;
          n_stub = 60;
          n_content = 4;
          target_prefixes = 120
        }
      in
      let w = Gen.generate params in
      let g = w.Gen.graph in
      (* announce from a deterministic stub *)
      match w.Gen.stubs with
      | [] -> true
      | origin :: _ ->
        let p = List.hd (As_graph.prefixes_of g origin) in
        let r = Propagation.propagate g [ Propagation.announce origin p ] in
        List.for_all
          (fun a ->
            match Propagation.full_path r a with
            | Some path -> valley_free g path
            | None -> true)
          (Propagation.reachable r))

let gen_small_world =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         Gen.generate
           { Gen.seed;
             n_tier1 = 2;
             n_large_transit = 4;
             n_small_transit = 10;
             n_stub = 40;
             n_content = 3;
             target_prefixes = 80
           })
       (QCheck.Gen.int_range 1 100_000))

let prop_selective_export_shrinks_reach =
  QCheck.Test.make ~name:"selective export never reaches more ASes" ~count:25
    gen_small_world
    (fun w ->
      let g = w.Gen.graph in
      match w.Gen.stubs with
      | [] -> true
      | origin :: _ ->
        let p = List.hd (As_graph.prefixes_of g origin) in
        let full =
          Propagation.propagate g [ Propagation.announce origin p ]
        in
        let providers = As_graph.providers g origin in
        let restricted =
          match providers with
          | [] -> full
          | first :: _ ->
            Propagation.propagate g
              [ Propagation.announce
                  ~export_to:(Asn.Set.singleton first)
                  origin p
              ]
        in
        Propagation.reachable_count restricted
        <= Propagation.reachable_count full)

let prop_down_as_monotone =
  QCheck.Test.make ~name:"failing an AS never increases reach" ~count:25
    gen_small_world
    (fun w ->
      let g = w.Gen.graph in
      match (w.Gen.stubs, w.Gen.small_transit) with
      | origin :: _, victim :: _ ->
        let p = List.hd (As_graph.prefixes_of g origin) in
        let full = Propagation.propagate g [ Propagation.announce origin p ] in
        let failed =
          Propagation.propagate g
            ~down:(Asn.Set.singleton victim)
            [ Propagation.announce origin p ]
        in
        Propagation.reachable_count failed <= Propagation.reachable_count full
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Bgp_sim: protocol-level engine, cross-validated against the
   algorithmic propagation engine *)

let test_bgp_sim_diamond () =
  let g = diamond () in
  let engine = Peering_sim.Engine.create () in
  let sim = Bgp_sim.build engine g in
  Peering_sim.Engine.run ~until:10.0 engine;
  Bgp_sim.start sim;
  check Alcotest.bool "converges" true (Bgp_sim.converged sim engine ());
  let p = pfx "10.4.0.0/16" in
  check Alcotest.int "all four routers have the route" 4
    (Bgp_sim.reachable_count sim p);
  (* tier1's protocol path matches the algorithmic engine's *)
  let alg =
    Propagation.propagate g [ Propagation.announce (asn 4) p ]
  in
  List.iter
    (fun a ->
      let proto_len =
        Option.map List.length (Bgp_sim.as_path_at sim (asn a) p)
      in
      let alg_len =
        Option.map List.length (Propagation.path_at alg (asn a))
      in
      check
        Alcotest.(option int)
        (Printf.sprintf "path length at AS%d" a)
        alg_len proto_len)
    [ 1; 2; 3 ];
  (* peer route not re-exported: 2 and 3 reach via their customer *)
  match Bgp_sim.as_path_at sim (asn 2) p with
  | Some path -> check Alcotest.(list int) "direct customer path" [ 4 ]
      (List.map Asn.to_int path)
  | None -> Alcotest.fail "AS2 unreachable"

let test_bgp_sim_withdraw_reconverges () =
  let g = diamond () in
  (* give 4 a second prefix through only one provider by failing a
     link mid-run instead: withdraw and confirm removal *)
  let engine = Peering_sim.Engine.create () in
  let sim = Bgp_sim.build engine g in
  Peering_sim.Engine.run ~until:10.0 engine;
  Bgp_sim.start sim;
  ignore (Bgp_sim.converged sim engine ());
  let p = pfx "10.4.0.0/16" in
  Bgp_sim.withdraw sim (asn 4) p;
  ignore (Bgp_sim.converged sim engine ());
  check Alcotest.int "withdrawn everywhere" 0 (Bgp_sim.reachable_count sim p)

let prop_bgp_sim_matches_propagation =
  QCheck.Test.make ~name:"protocol engine = algorithmic engine" ~count:8
    (QCheck.make (QCheck.Gen.int_range 1 1_000))
    (fun seed ->
      let params =
        { Gen.seed;
          n_tier1 = 2;
          n_large_transit = 3;
          n_small_transit = 6;
          n_stub = 18;
          n_content = 2;
          target_prefixes = 40
        }
      in
      let w = Gen.generate params in
      let g = w.Gen.graph in
      let engine = Peering_sim.Engine.create ~seed () in
      let sim = Bgp_sim.build engine g in
      Peering_sim.Engine.run ~until:20.0 engine;
      (* a single origin to keep runtimes low *)
      let origin = List.hd w.Gen.stubs in
      let p = List.hd (As_graph.prefixes_of g origin) in
      Bgp_sim.originate sim origin p;
      if not (Bgp_sim.converged sim engine ~timeout:1200.0 ()) then false
      else begin
        let alg = Propagation.propagate g [ Propagation.announce origin p ] in
        List.for_all
          (fun a ->
            let proto = Bgp_sim.as_path_at sim a p in
            let algo = Propagation.path_at alg a in
            match (proto, algo) with
            | None, None -> true
            | Some pp, Some ap ->
              (* both engines must agree on reachability and on the
                 economic class + path length (exact hops may differ on
                 ties) *)
              List.length pp = List.length ap
            | Some _, None | None, Some _ -> Asn.equal a origin
            (* the origin holds a local route in the protocol engine
               and an origin route in the algorithmic one: both Some *))
          (As_graph.ases g)
      end)

(* ------------------------------------------------------------------ *)
(* Customer cone *)

let test_cone () =
  let g = diamond () in
  check Alcotest.int "stub cone" 1 (Customer_cone.cone_size g (asn 4));
  check Alcotest.int "transit cone" 2 (Customer_cone.cone_size g (asn 2));
  check Alcotest.int "tier1 cone" 4 (Customer_cone.cone_size g (asn 1));
  let prefixes = Customer_cone.cone_prefixes g (asn 2) in
  check Alcotest.bool "cone prefixes include customer" true
    (Prefix.Set.mem (pfx "10.4.0.0/16") prefixes);
  match Customer_cone.top g 2 with
  | first :: _ -> check Alcotest.int "tier1 ranks first" 1 (Asn.to_int first)
  | [] -> Alcotest.fail "empty ranking"

(* ------------------------------------------------------------------ *)
(* Gen *)

let small_params =
  { Gen.default_params with
    Gen.n_tier1 = 5;
    n_large_transit = 10;
    n_small_transit = 40;
    n_stub = 200;
    n_content = 10;
    target_prefixes = 1500
  }

let test_gen_structure () =
  let w = Gen.generate small_params in
  let g = w.Gen.graph in
  check Alcotest.int "as count" 265 (As_graph.n_ases g);
  (* tier1 clique *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Asn.equal a b) then
            check Alcotest.bool "tier1 mesh" true
              (As_graph.relationship g a b = Some Relationship.Peer))
        w.Gen.tier1)
    w.Gen.tier1;
  (* every non-tier1 AS has at least one provider *)
  List.iter
    (fun a ->
      check Alcotest.bool "has provider" true
        (As_graph.providers g a <> []))
    (w.Gen.large_transit @ w.Gen.small_transit @ w.Gen.stubs @ w.Gen.content);
  (* prefix total near target *)
  let total = As_graph.n_prefixes g in
  check Alcotest.bool "prefix total near target" true
    (total > 1000 && total < 2200)

let test_gen_deterministic () =
  let w1 = Gen.generate small_params in
  let w2 = Gen.generate small_params in
  check Alcotest.int "same edges" (As_graph.n_edges w1.Gen.graph)
    (As_graph.n_edges w2.Gen.graph);
  check Alcotest.int "same prefixes" (As_graph.n_prefixes w1.Gen.graph)
    (As_graph.n_prefixes w2.Gen.graph)

let test_gen_connected_to_tier1 () =
  let w = Gen.generate small_params in
  let g = w.Gen.graph in
  (* every stub can climb to some tier1 by provider links *)
  let tier1 = Asn.Set.of_list w.Gen.tier1 in
  let rec climbs visited a =
    if Asn.Set.mem a tier1 then true
    else if Asn.Set.mem a visited then false
    else
      List.exists (climbs (Asn.Set.add a visited)) (As_graph.providers g a)
  in
  List.iter
    (fun s -> check Alcotest.bool "stub climbs to tier1" true (climbs Asn.Set.empty s))
    (List.filteri (fun i _ -> i < 50) w.Gen.stubs)

(* ------------------------------------------------------------------ *)
(* Topology zoo *)

let test_zoo_he () =
  let he = Topology_zoo.hurricane_electric in
  check Alcotest.int "24 pops" 24 (Topology_zoo.n_pops he);
  check Alcotest.bool "connected" true (Topology_zoo.is_connected he);
  check Alcotest.bool "amsterdam present" true
    (Topology_zoo.find_pop he "Amsterdam" <> None);
  check Alcotest.bool "case insensitive" true
    (Topology_zoo.find_pop he "amsterdam" <> None);
  (* amsterdam's neighbors include london and frankfurt *)
  match Topology_zoo.find_pop he "Amsterdam" with
  | Some p ->
    let n = Topology_zoo.neighbors he p.Topology_zoo.id in
    check Alcotest.bool "degree >= 2" true (List.length n >= 2)
  | None -> Alcotest.fail "no amsterdam"

let test_zoo_abilene () =
  let ab = Topology_zoo.abilene in
  check Alcotest.int "11 pops" 11 (Topology_zoo.n_pops ab);
  check Alcotest.bool "connected" true (Topology_zoo.is_connected ab)

let () =
  Alcotest.run "topo"
    [ ( "graph",
        [ tc "edges" `Quick test_graph_edges;
          tc "validation" `Quick test_graph_validation
        ] );
      ("gao-rexford", [ tc "export rules" `Quick test_export_rules ]);
      ( "propagation",
        [ tc "reaches all" `Quick test_propagation_reaches_all;
          tc "valley free" `Quick test_propagation_valley_free;
          tc "customer over peer" `Quick test_propagation_prefers_customer_over_peer;
          tc "poisoning" `Quick test_propagation_poisoning;
          tc "selective export" `Quick test_propagation_export_to;
          tc "as down" `Quick test_propagation_down_as;
          tc "anycast catchment" `Quick test_propagation_anycast_catchment;
          tc "routes via" `Quick test_propagation_routes_via;
          QCheck_alcotest.to_alcotest prop_valley_free;
          QCheck_alcotest.to_alcotest prop_selective_export_shrinks_reach;
          QCheck_alcotest.to_alcotest prop_down_as_monotone
        ] );
      ( "bgp-sim",
        [ tc "diamond" `Quick test_bgp_sim_diamond;
          tc "withdraw" `Quick test_bgp_sim_withdraw_reconverges;
          QCheck_alcotest.to_alcotest prop_bgp_sim_matches_propagation
        ] );
      ("cone", [ tc "cone" `Quick test_cone ]);
      ( "gen",
        [ tc "structure" `Quick test_gen_structure;
          tc "deterministic" `Quick test_gen_deterministic;
          tc "connected" `Quick test_gen_connected_to_tier1
        ] );
      ( "zoo",
        [ tc "hurricane electric" `Quick test_zoo_he;
          tc "abilene" `Quick test_zoo_abilene
        ] )
    ]
