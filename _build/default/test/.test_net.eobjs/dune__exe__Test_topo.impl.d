test/test_topo.ml: Alcotest As_graph Asn Bgp_sim Customer_cone Gen List Option Peering_net Peering_sim Peering_topo Prefix Printf Propagation QCheck QCheck_alcotest Relationship Topology_zoo
