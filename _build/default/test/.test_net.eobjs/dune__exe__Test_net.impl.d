test/test_net.ml: Alcotest Array Asn Country Int Ipv4 Ipv6 List Option Peering_net Prefix Prefix6 Prefix_pool Prefix_trie Printf QCheck QCheck_alcotest
