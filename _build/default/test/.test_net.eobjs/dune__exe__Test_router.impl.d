test/test_router.ml: Alcotest As_path Asn Attrs Community Config Ipv4 List Memory Option Peering_bgp Peering_net Peering_router Peering_sim Policy Prefix Rib Route Router Session
