test/test_ixp.mli:
