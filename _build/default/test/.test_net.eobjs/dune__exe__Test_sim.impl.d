test/test_sim.ml: Alcotest Array Engine Event_queue Fun Int List Peering_sim Rng Trace
