test/test_dataplane.ml: Alcotest Fib Filter Forwarder Ipv4 List Packet Packet_program Peering_dataplane Peering_net Peering_sim Prefix Traceroute Tunnel
