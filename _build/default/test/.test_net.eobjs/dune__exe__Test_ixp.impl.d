test/test_ixp.ml: Alcotest Amsix As_path Asn Attrs Community Country Fabric Ipv4 Lazy List Peering_bgp Peering_ixp Peering_net Peering_policy Peering_sim Peering_topo Prefix Route Route_server
