test/test_emu.ml: Alcotest Asn Fib Forwarder Igp Ipv4 List Mininext Packet Peering_dataplane Peering_emu Peering_net Peering_router Peering_sim Peering_topo Prefix
