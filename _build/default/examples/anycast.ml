(* Anycast from every PEERING site (paper §3, "Deploying real
   services": "researchers can ... attract traffic ..., e.g., by
   anycasting a prefix from all PEERING providers and peers").

   We announce one prefix from every site simultaneously and measure
   the catchment — which site each AS's traffic lands on — then break
   a site and watch its catchment drain to the survivors.

     dune exec examples/anycast.exe *)

open Peering_core
module Gen = Peering_topo.Gen

let catchment_table t prefix stubs =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun stub ->
      match Testbed.ingress_site t ~from_asn:stub prefix with
      | Some site ->
        Hashtbl.replace tally site
          (1 + Option.value (Hashtbl.find_opt tally site) ~default:0)
      | None -> ())
    stubs;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])

let print_catchment label table total =
  Printf.printf "%s\n" label;
  List.iter
    (fun (site, n) ->
      Printf.printf "  %-14s %5d ASes (%4.1f%%)\n" site n
        (100.0 *. float_of_int n /. float_of_int total))
    table

let () =
  print_endline "building testbed...";
  let t = Testbed.build () in
  let experiment =
    match
      Testbed.new_experiment t ~id:"anycast" ~owner:"cdn-lab"
        ~description:"global anycast catchment measurement service" ()
    with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"anycast" ~experiment () in
  let sites = List.map Testbed.site_name (Testbed.sites t) in
  Testbed.connect_client t client ~sites;
  let prefix = List.hd experiment.Experiment.prefixes in

  (* Announce from every site at once: one prefix, many origins. *)
  ignore (Client.announce client prefix);
  let w = Testbed.world t in
  let stubs = w.Gen.stubs in
  let total = List.length stubs in
  let table = catchment_table t prefix stubs in
  print_catchment
    (Printf.sprintf "anycast catchment over %d stub ASes:" total)
    table total;

  (* A site goes dark: withdraw there, keep the others. *)
  let dead = "amsterdam01" in
  Printf.printf "\nwithdrawing the announcement at %s...\n" dead;
  Client.withdraw client ~servers:[ dead ] prefix;
  let table' = catchment_table t prefix stubs in
  print_catchment "catchment after the failure:" table' total;
  let before = Option.value (List.assoc_opt dead table) ~default:0 in
  Printf.printf
    "\n%d ASes that used %s re-homed to the surviving sites; anycast\n\
     absorbed the failure with no unreachable networks: %b\n"
    before dead
    (List.fold_left (fun acc (_, n) -> acc + n) 0 table'
     >= List.fold_left (fun acc (_, n) -> acc + n) 0 table - 1);
  print_endline "done."
