(* ARROW-style "one tunnel is (often) enough" (paper §2: "ARROW
   demonstrated an incrementally deployable solution to black holes,
   denial of service attacks, and prefix hijacking" using early
   PEERING).

   A source's only BGP path to a destination crosses a transit that
   starts blackholing. The source cannot fix interdomain routing — but
   a single tunnel to PEERING, which still has a clean path to the
   destination, restores connectivity: traffic enters the tunnel,
   pops out at the PEERING server, and is forwarded on the healthy
   route.

     dune exec examples/arrow.exe *)

open Peering_net
module Engine = Peering_sim.Engine
module Forwarder = Peering_dataplane.Forwarder
module Fib = Peering_dataplane.Fib
module Packet = Peering_dataplane.Packet
module Tunnel = Peering_dataplane.Tunnel
module Traceroute = Peering_dataplane.Traceroute

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let ping fwd engine ~label ~expect =
  let delivered_before = Forwarder.delivered fwd in
  Forwarder.inject fwd ~at:"src"
    (Packet.make ~src:(ip "203.0.113.1") ~dst:(ip "198.51.100.80") ());
  Engine.run_for engine 2.0;
  let ok = Forwarder.delivered fwd > delivered_before in
  Printf.printf "%-42s %s\n" label
    (if ok = expect then
       if ok then "delivered" else "lost (as expected)"
     else "UNEXPECTED");
  ok

let () =
  let engine = Engine.create () in
  let fwd = Forwarder.create engine in
  (* src -> transitA -> dst is the only BGP path; PEERING has its own
     clean path to dst via transitB. *)
  List.iter (Forwarder.add_node fwd)
    [ "src"; "transitA"; "transitB"; "peering"; "dst" ];
  Forwarder.add_address fwd "src" (ip "203.0.113.1");
  Forwarder.add_address fwd "dst" (ip "198.51.100.80");
  Forwarder.add_address fwd "transitA" (ip "10.0.1.1");
  Forwarder.add_address fwd "transitB" (ip "10.0.2.1");
  Forwarder.add_address fwd "peering" (ip "184.164.224.1");
  List.iter
    (fun (node, dest, action) -> Forwarder.set_route fwd node dest action)
    [ ("src", pfx "198.51.100.0/24", Fib.Via "transitA");
      ("transitA", pfx "198.51.100.0/24", Fib.Via "dst");
      ("peering", pfx "198.51.100.0/24", Fib.Via "transitB");
      ("transitB", pfx "198.51.100.0/24", Fib.Via "dst");
      ("dst", pfx "198.51.100.0/24", Fib.Local);
      (* return paths *)
      ("dst", pfx "203.0.113.0/24", Fib.Via "transitA");
      ("transitA", pfx "203.0.113.0/24", Fib.Via "src");
      ("src", pfx "203.0.113.0/24", Fib.Local)
    ];

  ignore (ping fwd engine ~label:"healthy Internet:" ~expect:true);

  (* transitA starts blackholing the destination. *)
  Forwarder.set_route fwd "transitA" (pfx "198.51.100.0/24") Fib.Blackhole;
  ignore (ping fwd engine ~label:"transitA blackholes:" ~expect:false);

  (* ARROW repair: one tunnel from the source to PEERING; steer the
     destination prefix into it. PEERING's path is clean. *)
  let tun = Tunnel.establish fwd engine ~a:"src" ~b:"peering" () in
  Tunnel.route_via tun ~at:"src" (pfx "198.51.100.0/24");
  ignore (ping fwd engine ~label:"with one ARROW tunnel via PEERING:" ~expect:true);
  Printf.printf "tunnel carried %d packets (%d bytes)\n"
    (Tunnel.packets_carried tun) (Tunnel.bytes_carried tun);

  (* The data path is visible to traceroute: src -> (tunnel) -> peering
     -> transitB -> dst. *)
  let tr = Traceroute.run fwd engine ~src_node:"src" ~target:(ip "198.51.100.80") () in
  Format.printf "%a" Traceroute.pp tr;
  print_endline "done."
