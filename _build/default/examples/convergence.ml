(* Delayed BGP convergence, Labovitz-style (the paper cites this line
   of work as what route injection enabled: "this type of route
   injection was the basis for influential work on BGP convergence").

   We inject and withdraw a beacon prefix in a protocol-level
   simulation (real BGP sessions, real decision processes) and measure
   the classic asymmetry: withdrawals converge much more slowly than
   announcements because routers explore ever-longer alternate paths
   ("path hunting"), and the MRAI timer trades convergence time
   against update load.

     dune exec examples/convergence.exe *)

open Peering_net
module Engine = Peering_sim.Engine
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph
module Bgp_sim = Peering_topo.Bgp_sim

let world_params =
  { Gen.seed = 11;
    n_tier1 = 3;
    n_large_transit = 5;
    n_small_transit = 10;
    n_stub = 40;
    n_content = 2;
    target_prefixes = 80
  }

let run_trial mrai =
  let w = Gen.generate world_params in
  let g = w.Gen.graph in
  let engine = Engine.create ~seed:11 () in
  let sim = Bgp_sim.build engine ~mrai g in
  Engine.run ~until:30.0 engine;
  (* The quiescence window must outlast the MRAI hold, or held updates
     would be mistaken for convergence. *)
  let step = Float.max 1.0 mrai in
  let lag = 3.0 *. step in
  let origin = List.hd w.Gen.stubs in
  let beacon = Prefix.of_string_exn "184.164.231.0/24" in
  let updates_before = Bgp_sim.total_updates sim in
  let t0 = Engine.now engine in
  Bgp_sim.originate sim origin beacon;
  ignore (Bgp_sim.converged sim engine ~step ~timeout:4800.0 ());
  let t_up = Float.max 0.0 (Engine.now engine -. t0 -. lag) in
  let up_updates = Bgp_sim.total_updates sim - updates_before in
  let reached = Bgp_sim.reachable_count sim beacon in
  let updates_mid = Bgp_sim.total_updates sim in
  let t1 = Engine.now engine in
  Bgp_sim.withdraw sim origin beacon;
  ignore (Bgp_sim.converged sim engine ~step ~timeout:4800.0 ());
  let t_down = Float.max 0.0 (Engine.now engine -. t1 -. lag) in
  let down_updates = Bgp_sim.total_updates sim - updates_mid in
  (reached, t_up, up_updates, t_down, down_updates)

let () =
  Printf.printf
    "beacon inject/withdraw over a %d-AS protocol-level Internet\n"
    (3 + 5 + 10 + 40 + 2);
  Printf.printf "%8s %8s %10s %10s %10s %12s\n" "MRAI" "reach" "Tup(s)"
    "up-updates" "Tdown(s)" "down-updates";
  List.iter
    (fun mrai ->
      let reached, t_up, up_u, t_down, down_u = run_trial mrai in
      Printf.printf "%7.0fs %8d %10.1f %10d %10.1f %12d\n" mrai reached t_up
        up_u t_down down_u)
    [ 0.0; 5.0; 30.0 ];
  print_endline
    "\nThe Labovitz shape: withdrawals cost more updates than announcements\n\
     (path hunting), and MRAI batching cuts the update count while\n\
     stretching convergence time.";
  print_endline "done."
