(* The paper's §4.2 experiment as a runnable example: emulate
   Hurricane Electric's 24-PoP global backbone with MinineXt-style
   containers, connect the Amsterdam PoP to a PEERING mux at AMS-IX,
   and exchange routes and traffic between the emulated AS and the
   (simulated) Internet.

     dune exec examples/he_backbone.exe *)

open Peering_net
module Engine = Peering_sim.Engine
module Topology_zoo = Peering_topo.Topology_zoo
module Mininext = Peering_emu.Mininext
module Router = Peering_router.Router
module Rib = Peering_bgp.Rib
module Forwarder = Peering_dataplane.Forwarder
module Fib = Peering_dataplane.Fib
module Packet = Peering_dataplane.Packet
module Traceroute = Peering_dataplane.Traceroute

let () =
  let engine = Engine.create () in
  let fwd = Forwarder.create engine in

  (* 1. The emulated intradomain network: HE's backbone from the
     Topology Zoo, one router container per PoP. *)
  let he = Topology_zoo.hurricane_electric in
  Printf.printf "emulating %s: %d PoPs, %d links\n" he.Topology_zoo.name
    (Topology_zoo.n_pops he) (Topology_zoo.n_links he);
  let emu = Mininext.of_topology engine fwd ~asn:(Asn.of_int 6939) he in
  Mininext.start emu;
  Engine.run ~until:60.0 engine;
  Printf.printf "iBGP full mesh up: %d sessions\n"
    (Mininext.n_ibgp_sessions emu);

  (* 2. Each PoP originates a prefix. *)
  List.iteri
    (fun i pop ->
      Mininext.originate_at emu (Mininext.pop_name pop)
        (Prefix.make (Ipv4.of_octets 184 164 (224 + i) 0) 24))
    (Mininext.pops emu);
  Engine.run_for engine 30.0;

  (* 3. A PEERING mux at AMS-IX, speaking real BGP to the Amsterdam
     PoP over an eBGP session. *)
  let mux_addr = Ipv4.of_string_exn "100.65.0.1" in
  let mux = Router.create engine ~asn:(Asn.of_int 47065) ~router_id:mux_addr () in
  let ams = Mininext.pop_exn emu "Amsterdam" in
  ignore
    (Router.connect engine (mux, mux_addr) (Mininext.router ams, Mininext.loopback ams));
  Engine.run_for engine 10.0;

  (* The mux relays a slice of the AMS-IX table. *)
  for i = 0 to 99 do
    Router.originate mux (Prefix.make (Ipv4.of_octets 20 0 i 0) 24)
  done;
  Engine.run_for engine 60.0;

  (* 4. Routes went both ways. *)
  let sample_pop = Mininext.pop_exn emu "Hong Kong" in
  Printf.printf "Hong Kong PoP table: %d routes (24 internal + 100 AMS-IX)\n"
    (Router.table_size (Mininext.router sample_pop));
  let back =
    List.length
      (List.filter
         (fun (p, _) ->
           Prefix.subsumes (Prefix.of_string_exn "184.164.192.0/18") p)
         (Rib.best_routes (Router.rib mux)))
  in
  Printf.printf "mux learned %d PoP prefixes back from the emulated AS\n" back;

  (* 5. Traffic: a host behind the Seattle PoP reaches an AMS-IX
     destination across the emulated backbone and out of the border. *)
  Forwarder.add_node fwd "amsix-fabric";
  Forwarder.add_address fwd "amsix-fabric" (Ipv4.of_string_exn "20.0.7.7");
  Forwarder.set_route fwd "amsix-fabric" (Prefix.of_string_exn "20.0.0.0/16")
    Fib.Local;
  Mininext.external_gateway emu ~pop:"Amsterdam" ~peer_addr:mux_addr
    ~node:"amsix-fabric";
  Mininext.sync_fibs emu;
  let seattle = Mininext.pop_exn emu "Seattle" in
  let delivered = ref false in
  Forwarder.on_deliver fwd "amsix-fabric" (fun p ->
      delivered := true;
      Format.printf "delivered at AMS-IX: %a@." Packet.pp p);
  Forwarder.inject fwd
    ~at:(Mininext.node_id seattle)
    (Packet.make ~src:(Mininext.loopback seattle)
       ~dst:(Ipv4.of_string_exn "20.0.7.7") ());
  Engine.run_for engine 5.0;
  Printf.printf "Seattle -> AMS-IX traffic delivered: %b\n" !delivered;

  (* 6. Traceroute across the backbone shows the PoP-level path. *)
  let tr =
    Traceroute.run fwd engine
      ~src_node:(Mininext.node_id seattle)
      ~target:(Mininext.loopback (Mininext.pop_exn emu "Amsterdam"))
      ()
  in
  Format.printf "%a" Traceroute.pp tr;

  (* 7. The paper's scaling claim: memory stays desktop-sized. *)
  Printf.printf
    "memory: %.2f GB modelled for 24 Quagga containers (paper: fits in 8 GB)\n"
    (float_of_int (Mininext.container_model_bytes emu) /. 1073741824.0);
  print_endline "done."
