(* Quickstart: bring up the testbed, run an experiment, announce a
   prefix to the world, and look at what happened.

     dune exec examples/quickstart.exe *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen

let () =
  (* 1. Build the whole testbed: a synthetic Internet, the PEERING AS
     deployed at AMS-IX, Phoenix-IX and three university sites. The
     default world is laptop-sized (~3,400 ASes). *)
  print_endline "building testbed (synthetic Internet + PEERING sites)...";
  let t = Testbed.build () in
  List.iter
    (fun site ->
      Printf.printf "  site %-12s %4d peers\n" (Testbed.site_name site)
        (List.length (Peering_core.Server.peer_asns (Testbed.site_server site))))
    (Testbed.sites t);

  (* 2. Propose an experiment. The controller vets it, allocates a /24
     out of PEERING's 184.164.224.0/19 and a private ASN. *)
  let experiment =
    match
      Testbed.new_experiment t ~id:"quickstart" ~owner:"you"
        ~description:"first contact with the PEERING testbed API" ()
    with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  Format.printf "%a@." Experiment.pp experiment;

  (* 3. Connect a client to two sites. The client is your AS's border
     router: it sees every peer's routes and controls announcements. *)
  let client = Client.create ~id:"quickstart-client" ~experiment () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];

  (* 4. Announce our prefix everywhere and see how far it got. *)
  let prefix = List.hd experiment.Experiment.prefixes in
  let results = Client.announce client prefix in
  List.iter
    (fun (site, r) ->
      Printf.printf "  announce via %-12s %s\n" site
        (match r with
        | Ok () -> "accepted"
        | Error reason -> "rejected: " ^ Safety.reason_to_string reason))
    results;
  let total = Peering_topo.As_graph.n_ases (Testbed.graph t) in
  Printf.printf "prefix %s is now reachable from %d of %d ASes\n"
    (Prefix.to_string prefix)
    (Testbed.reach_count t prefix)
    total;

  (* 5. Ask how a random far-away stub reaches us. *)
  let w = Testbed.world t in
  let stub = List.nth w.Gen.stubs 100 in
  (match Testbed.path_from t stub prefix with
  | Some path ->
    Printf.printf "AS path from %s: %s\n"
      (Asn.to_string stub)
      (String.concat " " (List.map Asn.to_string path))
  | None -> print_endline "stub has no route (unexpected)");
  (match Testbed.ingress_site t ~from_asn:stub prefix with
  | Some site -> Printf.printf "its traffic enters PEERING at %s\n" site
  | None -> ());

  (* 6. Withdraw and confirm the Internet forgot us. *)
  Client.withdraw client prefix;
  Printf.printf "after withdraw: reachable from %d ASes\n"
    (Testbed.reach_count t prefix);

  (* 7. The safety layer at work: announcing someone else's prefix is
     refused before it can touch the control plane. *)
  let foreign = Prefix.of_string_exn "8.8.8.0/24" in
  (match Client.announce client foreign with
  | (_, Error reason) :: _ ->
    Printf.printf "hijack attempt: %s\n" (Safety.reason_to_string reason)
  | _ -> print_endline "hijack was not blocked?!");
  print_endline "done."
