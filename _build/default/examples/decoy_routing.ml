(* A decoy-routing service (paper §3, "Deploying real services": "A
   decoy routing service could take traffic at an IXP, rewrite
   packets, and send the modified packet back to the IXP fabric
   towards its new destination").

   A censored client cannot reach blocked.example directly, but its
   traffic to an innocuous "decoy" destination transits the PEERING
   server at the IXP. The server's packet-processing program spots a
   covert tag (a magic destination port), rewrites the destination to
   the blocked site, and sends the packet onward — circumvention
   without the censor seeing the true destination.

     dune exec examples/decoy_routing.exe *)

open Peering_net
module Engine = Peering_sim.Engine
module Forwarder = Peering_dataplane.Forwarder
module Fib = Peering_dataplane.Fib
module Packet = Peering_dataplane.Packet
module Packet_program = Peering_dataplane.Packet_program

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let () =
  let engine = Engine.create () in
  let fwd = Forwarder.create engine in
  (* Topology: client -> censor -> ixp(PEERING server) -> {decoy, blocked} *)
  List.iter (Forwarder.add_node fwd)
    [ "client"; "censor"; "ixp"; "decoy"; "blocked" ];
  Forwarder.add_address fwd "client" (ip "203.0.113.10");
  Forwarder.add_address fwd "decoy" (ip "198.51.100.1");
  Forwarder.add_address fwd "blocked" (ip "192.0.2.80");
  (* routes *)
  List.iter
    (fun (node, dest, action) -> Forwarder.set_route fwd node dest action)
    [ ("client", pfx "0.0.0.0/0", Fib.Via "censor");
      ("censor", pfx "198.51.100.0/24", Fib.Via "ixp");
      ("censor", pfx "192.0.2.0/24", Fib.Blackhole) (* censorship *);
      ("ixp", pfx "198.51.100.0/24", Fib.Via "decoy");
      ("ixp", pfx "192.0.2.0/24", Fib.Via "blocked");
      ("decoy", pfx "198.51.100.0/24", Fib.Local);
      ("blocked", pfx "192.0.2.0/24", Fib.Local)
    ];

  (* The censor drops anything addressed to the blocked site. *)
  let censored = ref 0 in
  let censor_program =
    Packet_program.compile engine
      [ { Packet_program.name = "block-bad-site";
          spec =
            { Packet_program.match_any with
              Packet_program.dst_in = Some (pfx "192.0.2.0/24")
            };
          action = Packet_program.Drop
        };
        { Packet_program.name = "allow";
          spec = Packet_program.match_any;
          action = Packet_program.Allow
        }
      ]
  in
  Packet_program.install censor_program fwd "censor";

  (* The decoy-routing program at the PEERING server: traffic "to the
     decoy" on the covert port is rewritten toward the blocked site. *)
  let decoy_program =
    Packet_program.compile engine
      [ { Packet_program.name = "decoy-rewrite";
          spec =
            { Packet_program.match_any with
              Packet_program.dst_in = Some (pfx "198.51.100.0/24");
              dport = Some 443
            };
          action = Packet_program.Rewrite_dst (ip "192.0.2.80")
        };
        { Packet_program.name = "pass";
          spec = Packet_program.match_any;
          action = Packet_program.Allow
        }
      ]
  in
  Packet_program.install decoy_program fwd "ixp";

  let at_blocked = ref 0 and at_decoy = ref 0 in
  Forwarder.on_deliver fwd "blocked" (fun _ -> incr at_blocked);
  Forwarder.on_deliver fwd "decoy" (fun _ -> incr at_decoy);
  ignore censored;

  (* 1. Direct access to the blocked site: the censor eats it. *)
  Forwarder.inject fwd ~at:"client"
    (Packet.make ~src:(ip "203.0.113.10") ~dst:(ip "192.0.2.80")
       ~proto:(Packet.Tcp { sport = 5000; dport = 80 }) ());
  Engine.run_for engine 1.0;
  Printf.printf "direct request:       blocked site received %d (censor dropped %d)\n"
    !at_blocked
    (Packet_program.hits censor_program "block-bad-site");

  (* 2. Covert access via the decoy: innocuous destination passes the
     censor; the IXP program rewrites it. *)
  Forwarder.inject fwd ~at:"client"
    (Packet.make ~src:(ip "203.0.113.10") ~dst:(ip "198.51.100.1")
       ~proto:(Packet.Tcp { sport = 5001; dport = 443 }) ());
  Engine.run_for engine 1.0;
  Printf.printf
    "decoy-routed request: blocked site received %d (rewritten at IXP: %d)\n"
    !at_blocked
    (Packet_program.rewritten decoy_program);

  (* 3. Ordinary traffic to the decoy on another port is untouched. *)
  Forwarder.inject fwd ~at:"client"
    (Packet.make ~src:(ip "203.0.113.10") ~dst:(ip "198.51.100.1")
       ~proto:(Packet.Tcp { sport = 5002; dport = 80 }) ());
  Engine.run_for engine 1.0;
  Printf.printf "ordinary request:     decoy site received %d\n" !at_decoy;
  print_endline "done."
