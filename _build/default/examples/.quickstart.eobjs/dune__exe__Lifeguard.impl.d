examples/lifeguard.ml: Asn Client Experiment Hashtbl List Option Peering_core Peering_net Peering_topo Prefix Printf Safety Testbed
