examples/mitm_hijack.mli:
