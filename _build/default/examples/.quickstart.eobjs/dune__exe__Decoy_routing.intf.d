examples/decoy_routing.mli:
