examples/arrow.ml: Format Ipv4 List Peering_dataplane Peering_net Peering_sim Prefix Printf
