examples/mitm_hijack.ml: Asn Client Experiment List Peering_core Peering_measure Peering_net Peering_topo Prefix Printf String Testbed
