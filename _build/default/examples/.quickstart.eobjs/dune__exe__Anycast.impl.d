examples/anycast.ml: Client Experiment Hashtbl List Option Peering_core Peering_topo Printf String Testbed
