examples/lifeguard.mli:
