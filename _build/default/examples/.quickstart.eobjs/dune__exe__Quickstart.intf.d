examples/quickstart.mli:
