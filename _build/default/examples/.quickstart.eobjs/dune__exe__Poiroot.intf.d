examples/poiroot.mli:
