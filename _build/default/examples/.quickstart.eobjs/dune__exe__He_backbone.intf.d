examples/he_backbone.mli:
