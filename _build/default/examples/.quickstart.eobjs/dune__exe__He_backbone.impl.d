examples/he_backbone.ml: Asn Format Ipv4 List Peering_bgp Peering_dataplane Peering_emu Peering_net Peering_router Peering_sim Peering_topo Prefix Printf
