examples/decoy_routing.ml: Ipv4 List Peering_dataplane Peering_net Peering_sim Prefix Printf
