examples/arrow.mli:
