examples/quickstart.ml: Asn Client Experiment Format List Peering_core Peering_net Peering_topo Prefix Printf Safety String Testbed
