examples/convergence.mli:
