examples/poiroot.ml: Asn Client Experiment Hashtbl List Option Peering_core Peering_net Peering_topo Printf String Testbed
