examples/convergence.ml: Float List Peering_net Peering_sim Peering_topo Prefix Printf
