examples/anycast.mli:
