(** The researcher-side client.

    A client connects to one or more PEERING servers and behaves like
    the experiment's own border router: it receives every upstream
    peer's routes (not just a selected best), keeps them in its own
    RIB, runs its own decision process, and announces or withdraws
    prefixes with per-peer control. "Ignoring" peers lets an
    experiment emulate an arbitrary interdomain topology out of the
    real one (paper §3). *)

open Peering_net
open Peering_bgp

type t

val create : id:string -> experiment:Experiment.t -> unit -> t

val id : t -> string
val experiment : t -> Experiment.t

val connect : t -> Server.t -> unit
(** Attach to a server; its peers' routes start flowing into the
    client RIB keyed by (server, peer). *)

val disconnect : t -> Server.t -> unit
val servers : t -> string list

val ignore_peer : t -> server:string -> peer:Asn.t -> unit
(** Drop current and future routes from this peer — topology
    emulation by peer selection. *)

val unignore_peer : t -> server:string -> peer:Asn.t -> unit

val announce :
  t ->
  ?servers:string list ->
  ?peers:Asn.t list ->
  ?path_suffix:Asn.t list ->
  Prefix.t ->
  (string * (unit, Safety.reason) result) list
(** Announce via the named servers (default: all connected), returning
    the per-server outcome. *)

val withdraw : t -> ?servers:string list -> Prefix.t -> unit

val rib : t -> Rib.t
val candidates : t -> Prefix.t -> Route.t list
(** All routes for the prefix across servers and peers, best first. *)

val best : t -> Prefix.t -> Route.t option
val route_count : t -> int
val prefix_count : t -> int

val egress_for : t -> Ipv4.t -> (string * Asn.t) option
(** Which (server, upstream peer) the client's best route would send
    traffic for this address through — the client-side forwarding
    decision. *)
