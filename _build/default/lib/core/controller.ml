open Peering_net
module Engine = Peering_sim.Engine

type t = {
  engine : Engine.t;
  mutable pool : Prefix_pool.t;
  mutable v6_pool : Prefix6.Pool.pool;
  max_prefixes : int;
  mutable experiments : Experiment.t list;
  mutable next_private_asn : int;
  mutable pending : int;
}

let default_v6_supply = Prefix6.of_string_exn "2804:269c::/32"

let create engine ~supply ?(alloc_len = 24) ?v6_supply ?(v6_alloc_len = 48)
    ?(max_prefixes_per_experiment = 4) () =
  let v6_supply = Option.value v6_supply ~default:default_v6_supply in
  { engine;
    pool = Prefix_pool.create ~alloc_len supply;
    v6_pool = Prefix6.Pool.create ~alloc_len:v6_alloc_len v6_supply;
    max_prefixes = max_prefixes_per_experiment;
    experiments = [];
    next_private_asn = 64512;
    pending = 0
  }

let find_experiment t id =
  List.find_opt (fun e -> e.Experiment.id = id) t.experiments

let alloc_prefixes t n =
  let rec go acc n =
    if n = 0 then Some (List.rev acc)
    else
      match Prefix_pool.alloc t.pool with
      | None -> None
      | Some (p, pool) ->
        t.pool <- pool;
        go (p :: acc) (n - 1)
  in
  go [] n

let alloc_asns t n =
  List.init n (fun _ ->
      let a = t.next_private_asn in
      t.next_private_asn <- t.next_private_asn + 1;
      Asn.of_int a)

let alloc_v6 t n =
  List.init n (fun _ ->
      match Prefix6.Pool.alloc t.v6_pool with
      | Some (p, pool) ->
        t.v6_pool <- pool;
        p
      | None -> invalid_arg "Controller: v6 pool exhausted")

let propose t ~id ~owner ~description ?(n_prefixes = 1) ?(n_v6_prefixes = 0)
    ?(n_private_asns = 1) ?(may_poison = false) ?(may_spoof = false) () =
  if find_experiment t id <> None then Error "duplicate experiment id"
  else if String.length (String.trim description) < 20 then
    Error "description too short for vetting"
  else if n_prefixes < 1 || n_prefixes > t.max_prefixes then
    Error
      (Printf.sprintf "experiments may hold 1-%d prefixes" t.max_prefixes)
  else if Prefix_pool.available t.pool < n_prefixes then
    Error "prefix pool exhausted"
  else begin
    let e =
      Experiment.make ~id ~owner ~description ~may_poison ~may_spoof ()
    in
    (match alloc_prefixes t n_prefixes with
    | Some ps -> e.Experiment.prefixes <- ps
    | None -> assert false (* availability checked above *));
    if n_v6_prefixes > 0 then
      e.Experiment.v6_prefixes <- alloc_v6 t n_v6_prefixes;
    e.Experiment.private_asns <- alloc_asns t n_private_asns;
    e.Experiment.status <- Experiment.Approved;
    t.experiments <- t.experiments @ [ e ];
    Ok e
  end

let activate _t e =
  match e.Experiment.status with
  | Experiment.Approved -> e.Experiment.status <- Experiment.Active
  | _ -> invalid_arg "Controller.activate: experiment not approved"

let stop t e =
  (match e.Experiment.status with
  | Experiment.Stopped -> ()
  | _ ->
    e.Experiment.status <- Experiment.Stopped;
    List.iter
      (fun p ->
        match Prefix_pool.free p t.pool with
        | Ok pool -> t.pool <- pool
        | Error `Not_allocated -> ())
      e.Experiment.prefixes;
    e.Experiment.prefixes <- [];
    List.iter
      (fun p ->
        match Prefix6.Pool.free p t.v6_pool with
        | Ok pool -> t.v6_pool <- pool
        | Error `Not_allocated -> ())
      e.Experiment.v6_prefixes;
    e.Experiment.v6_prefixes <- [])

let experiments t = t.experiments
let owns t p = Prefix_pool.mem_supply p t.pool
let available_blocks t = Prefix_pool.available t.pool
let donate_supply t p = t.pool <- Prefix_pool.add_supply p t.pool

let schedule_announcement t ~at ~action ?notify () =
  t.pending <- t.pending + 1;
  Engine.schedule_at t.engine ~time:at (fun () ->
      t.pending <- t.pending - 1;
      action ();
      match notify with
      | Some f -> f (Engine.now t.engine)
      | None -> ())

let scheduled_count t = t.pending
