(** The PEERING controller: the management plane the paper describes
    as "a prototype web service" plus the operational automation —
    experiment vetting (advisory board), prefix and private-ASN
    allocation, scheduled announcements with researcher notification,
    and supply donations. *)

open Peering_net

type t

val create :
  Peering_sim.Engine.t ->
  supply:Prefix.t list ->
  ?alloc_len:int ->
  ?v6_supply:Prefix6.t ->
  ?v6_alloc_len:int ->
  ?max_prefixes_per_experiment:int ->
  unit ->
  t
(** [supply] is PEERING's address space (the paper's /19);
    [alloc_len] the per-experiment block size (default 24, "a client
    per /24"). [v6_supply] (default [2804:269c::/32]) feeds /48
    experiment blocks ([v6_alloc_len], default 48) — the paper's
    planned IPv6 support. *)

val propose :
  t ->
  id:string ->
  owner:string ->
  description:string ->
  ?n_prefixes:int ->
  ?n_v6_prefixes:int ->
  ?n_private_asns:int ->
  ?may_poison:bool ->
  ?may_spoof:bool ->
  unit ->
  (Experiment.t, string) result
(** Submit a proposal. Vetting rules (the advisory board): a
    non-trivial description (≥ 20 chars), within the per-experiment
    prefix cap, pool not exhausted, unique id. On success the
    experiment is [Approved] with prefixes and private ASNs
    allocated. *)

val activate : t -> Experiment.t -> unit
(** Move an approved experiment to [Active]. Raises
    [Invalid_argument] unless approved. *)

val stop : t -> Experiment.t -> unit
(** Stop and return its prefixes to the pool. *)

val experiments : t -> Experiment.t list
val find_experiment : t -> string -> Experiment.t option

val owns : t -> Prefix.t -> bool
(** Supply-ownership test (feeds {!Safety.create}). *)

val available_blocks : t -> int

val donate_supply : t -> Prefix.t -> unit
(** Researchers have offered to donate IPv4 prefixes (paper §3). *)

val schedule_announcement :
  t ->
  at:float ->
  action:(unit -> unit) ->
  ?notify:(float -> unit) ->
  unit ->
  unit
(** Schedule an action (announce/withdraw closure) at an absolute
    virtual time; [notify] is invoked with the execution time so the
    researcher can line up measurements — the paper's scheduling web
    service. *)

val scheduled_count : t -> int
(** Actions scheduled and not yet executed. *)
