(** The testbed-capability model behind Table 1.

    Encodes which of the §2 goals each research platform meets, as the
    paper assesses them, and checks the paper's two claims: PEERING
    meets all goals, and no two other systems combined do. *)

type goal =
  | Interdomain  (** control of interdomain topology and routing *)
  | Rich_connectivity
  | Traffic  (** control of traffic *)
  | Real_services
  | Intradomain  (** control of intradomain topology and routing *)
  | Open_simultaneous  (** openness / simultaneous experiments *)

val goals : goal list
(** Table row order. *)

val goal_to_string : goal -> string

type testbed =
  | Planetlab
  | Vini
  | Emulab
  | Mininet
  | Route_collectors
  | Beacons
  | Transit_portal
  | Peering

val testbeds : testbed list
(** Table column order (PL VN EM MN RC BC TP PR). *)

val testbed_to_string : testbed -> string
val testbed_abbrev : testbed -> string

type support = Full | Limited | None_

val support_symbol : support -> string
(** ["yes"], ["~"], ["no"]. *)

val support : testbed -> goal -> support
(** The Table 1 cell. *)

val peering_meets_all : unit -> bool

val combinations_covering_all : unit -> (testbed * testbed) list
(** Pairs of non-PEERING testbeds that would jointly provide full
    support for every goal — the paper claims this list is empty. *)

val render : unit -> string
(** The table as text, paper layout. *)
