(** The researcher-facing web portal (paper §3, "Easing management and
    experiment deployment"): account requests, advisory-board vetting
    of experiment proposals, and automated provisioning — the portal
    emits the exact Quagga-style client configuration a researcher
    needs, validated by our own parser.

    The advisory board is a list of reviewer functions; a proposal
    needs a strict majority of approvals — and unanimity when it
    requests dangerous capabilities (poisoning, spoofing). The default
    board applies the paper's safety instincts: poisoning and spoofing
    need explicit justification in the proposal text. *)

open Peering_net

type account = {
  username : string;
  email : string;
  affiliation : string;
  mutable approved : bool;
}

type proposal = {
  proposal_id : string;
  username_of : string;
  description : string;
  n_prefixes : int;
  wants_poison : bool;
  wants_spoof : bool;
}

type review = Approve | Reject of string

type reviewer = proposal -> review

val default_board : reviewer list
(** Three reviewers: one checks the science (description length), one
    the safety (poisoning/spoofing must be justified by mentioning the
    words "poison"/"spoof" in the description), one the resources
    (≤ 2 prefixes unless justified with "anycast" or "multiple"). *)

type provision_kit = {
  experiment : Experiment.t;
  sites : (string * Ipv4.t) list;  (** site name, server endpoint *)
  client_config : string;
      (** bgpd configuration for the researcher's client router —
          guaranteed to parse with {!Peering_router.Config} *)
  tunnel_endpoints : (string * Ipv4.t) list;
      (** OpenVPN-style endpoints, one per site *)
}

type t

val create : ?board:reviewer list -> Testbed.t -> t

val register :
  t -> username:string -> email:string -> affiliation:string ->
  (unit, string) result
(** Request an account. Academic affiliations ([.edu] or a non-empty
    institution string) are auto-approved; duplicates rejected. *)

val account : t -> string -> account option

val submit :
  t ->
  username:string ->
  id:string ->
  description:string ->
  ?n_prefixes:int ->
  ?wants_poison:bool ->
  ?wants_spoof:bool ->
  unit ->
  (unit, string) result
(** Queue a proposal for review. Requires an approved account. *)

val pending : t -> proposal list

val run_board : t -> (string * (Experiment.t, string) result) list
(** Review every pending proposal: majority approval provisions the
    experiment through the controller (allocation + activation);
    rejection reports the reviewers' reasons. Returns per-proposal
    outcomes and clears the queue. *)

val provision : t -> experiment_id:string -> (provision_kit, string) result
(** Produce the provisioning kit for an approved experiment: the
    client configuration (with per-site neighbors and an export
    route-map limiting announcements to the experiment's prefixes),
    endpoints and tunnels. *)
