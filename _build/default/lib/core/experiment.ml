open Peering_net

type status =
  | Proposed
  | Approved
  | Active
  | Stopped
  | Rejected of string

let status_to_string = function
  | Proposed -> "proposed"
  | Approved -> "approved"
  | Active -> "active"
  | Stopped -> "stopped"
  | Rejected r -> "rejected: " ^ r

type t = {
  id : string;
  owner : string;
  description : string;
  mutable prefixes : Prefix.t list;
  mutable v6_prefixes : Prefix6.t list;
  mutable private_asns : Asn.t list;
  may_poison : bool;
  may_spoof : bool;
  mutable status : status;
}

let make ~id ~owner ~description ?(may_poison = false) ?(may_spoof = false) () =
  { id;
    owner;
    description;
    prefixes = [];
    v6_prefixes = [];
    private_asns = [];
    may_poison;
    may_spoof;
    status = Proposed
  }

let owns_prefix t p = List.exists (fun q -> Prefix.subsumes q p) t.prefixes

let owns_v6_prefix t p =
  List.exists (fun q -> Prefix6.subsumes q p) t.v6_prefixes
let owns_asn t a = List.exists (Asn.equal a) t.private_asns
let is_active t = t.status = Active

let pp ppf t =
  Format.fprintf ppf "experiment %s (%s, %s): prefixes=[%s] asns=[%s]" t.id
    t.owner
    (status_to_string t.status)
    (String.concat " " (List.map Prefix.to_string t.prefixes))
    (String.concat " " (List.map Asn.to_string t.private_asns))
