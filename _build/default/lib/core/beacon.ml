
type t = {
  mutable log : (float * [ `Announce | `Withdraw ]) list;  (* newest first *)
  mutable suppressed : int;
}

let start testbed client ~prefix ?(period = 7200.0) ?(rounds = 4) () =
  let t = { log = []; suppressed = 0 } in
  let ctl = Testbed.controller testbed in
  let engine = Testbed.engine testbed in
  let module Engine = Peering_sim.Engine in
  for round = 0 to rounds - 1 do
    let announce_at = Engine.now engine +. (float_of_int (2 * round) +. 1.0) *. period in
    let withdraw_at = announce_at +. period in
    Controller.schedule_announcement ctl ~at:announce_at
      ~action:(fun () ->
        let outcomes = Client.announce client prefix in
        let ok =
          List.exists (fun (_, r) -> Result.is_ok r) outcomes
        in
        if ok then t.log <- (Engine.now engine, `Announce) :: t.log
        else t.suppressed <- t.suppressed + 1)
      ();
    Controller.schedule_announcement ctl ~at:withdraw_at
      ~action:(fun () ->
        Client.withdraw client prefix;
        t.log <- (Engine.now engine, `Withdraw) :: t.log)
      ()
  done;
  t

let events t = List.rev t.log
let transitions_executed t = List.length t.log
let suppressed t = t.suppressed
