type goal =
  | Interdomain
  | Rich_connectivity
  | Traffic
  | Real_services
  | Intradomain
  | Open_simultaneous

let goals =
  [ Interdomain; Rich_connectivity; Traffic; Real_services; Intradomain;
    Open_simultaneous ]

let goal_to_string = function
  | Interdomain -> "Interdomain"
  | Rich_connectivity -> "Rich conn."
  | Traffic -> "Traffic"
  | Real_services -> "Real services"
  | Intradomain -> "Intradomain"
  | Open_simultaneous -> "Open/Simult. experiments"

type testbed =
  | Planetlab
  | Vini
  | Emulab
  | Mininet
  | Route_collectors
  | Beacons
  | Transit_portal
  | Peering

let testbeds =
  [ Planetlab; Vini; Emulab; Mininet; Route_collectors; Beacons;
    Transit_portal; Peering ]

let testbed_to_string = function
  | Planetlab -> "PlanetLab"
  | Vini -> "VINI"
  | Emulab -> "EmuLab"
  | Mininet -> "MiniNet"
  | Route_collectors -> "Route Collectors"
  | Beacons -> "Beacons"
  | Transit_portal -> "TransitPortal"
  | Peering -> "PEERING"

let testbed_abbrev = function
  | Planetlab -> "PL"
  | Vini -> "VN"
  | Emulab -> "EM"
  | Mininet -> "MN"
  | Route_collectors -> "RC"
  | Beacons -> "BC"
  | Transit_portal -> "TP"
  | Peering -> "PR"

type support = Full | Limited | None_

let support_symbol = function Full -> "yes" | Limited -> "~" | None_ -> "no"

(* Table 1, transcribed cell by cell. *)
let support testbed goal =
  match (goal, testbed) with
  | Interdomain, Beacons -> Limited
  | Interdomain, (Transit_portal | Peering) -> Full
  | Interdomain, (Planetlab | Vini | Emulab | Mininet | Route_collectors) ->
    None_
  | Rich_connectivity, (Planetlab | Route_collectors | Peering) -> Full
  | Rich_connectivity, (Vini | Emulab | Mininet | Beacons | Transit_portal) ->
    None_
  | Traffic, (Planetlab | Vini | Emulab | Mininet | Peering) -> Full
  | Traffic, Transit_portal -> Limited
  | Traffic, (Route_collectors | Beacons) -> None_
  | Real_services, (Planetlab | Vini | Transit_portal | Peering) -> Full
  | Real_services, (Emulab | Mininet | Route_collectors | Beacons) -> None_
  | Intradomain, (Vini | Emulab | Mininet | Peering) -> Full
  | Intradomain, (Planetlab | Route_collectors | Beacons | Transit_portal) ->
    None_
  | Open_simultaneous, (Planetlab | Vini | Emulab | Mininet | Route_collectors | Peering)
    -> Full
  | Open_simultaneous, (Beacons | Transit_portal) -> None_

let peering_meets_all () =
  List.for_all (fun g -> support Peering g = Full) goals

let combinations_covering_all () =
  let others = List.filter (fun t -> t <> Peering) testbeds in
  let covers a b =
    List.for_all
      (fun g -> support a g = Full || support b g = Full)
      goals
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a < b && covers a b then Some (a, b) else None)
        others)
    others

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%-26s" "");
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "%-5s" (testbed_abbrev t)))
    testbeds;
  Buffer.add_char buf '\n';
  List.iter
    (fun g ->
      Buffer.add_string buf (Printf.sprintf "%-26s" (goal_to_string g));
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "%-5s" (support_symbol (support t g))))
        testbeds;
      Buffer.add_char buf '\n')
    goals;
  Buffer.contents buf
