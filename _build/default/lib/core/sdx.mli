(** A software-defined IXP in miniature (SDX, Gupta et al. SIGCOMM
    2014 — "the prototype used PEERING to route traffic to and from
    the actual Internet", paper §2).

    Participants attach an edge node and announce prefixes into the
    exchange; each may install application-specific outbound policies
    (match on packet fields, forward to a chosen peer). The controller
    composes policy with BGP: an override is installed only when its
    target participant actually announced a route covering the matched
    destinations — SDX's central correctness rule. Unmatched traffic
    follows plain BGP (longest prefix, first announcer wins ties). *)

open Peering_net
open Peering_dataplane

type action =
  | Forward_to of Asn.t  (** deliver via this participant *)
  | Drop_traffic

type rule = {
  description : string;
  matches : Packet_program.match_spec;
  action : action;
}

type t

val create :
  Peering_sim.Engine.t -> Forwarder.t -> name:string -> unit -> t

val fabric_node : t -> Forwarder.node_id
(** The exchange fabric; point participant routes here. *)

val attach_participant : t -> asn:Asn.t -> node:Forwarder.node_id -> unit
(** Register a participant's edge node. Raises on duplicates. *)

val announce : t -> from:Asn.t -> Prefix.t -> unit
(** A participant announces a prefix into the exchange (route-server
    style). Raises if [from] is not attached. *)

val set_policy : t -> asn:Asn.t -> rule list -> unit
(** Install the participant-supplied outbound rules (evaluated in
    order, before BGP forwarding). *)

val compile : t -> (unit, string) result
(** Build the fabric's forwarding state: BGP default routes plus the
    policy overrides that pass the reachability check. Fails if a
    [Forward_to] names an unattached participant. Re-callable after
    changes. *)

val rejected_rules : t -> (Asn.t * string) list
(** Rules dropped by the reachability check at the last compile:
    the target never announced a covering route for the rule's
    destination match. *)

val delivered_to : t -> Asn.t -> int
(** Packets the fabric has handed to this participant. *)
