(** Experiment descriptors.

    Every researcher activity on the testbed runs inside an
    experiment: a vetted proposal that owns a slice of PEERING's
    address space and a set of private ASNs for its emulated domains.
    Isolation between simultaneous experiments (paper §2/§3) is
    enforced by making all control- and data-plane permissions flow
    from this record. *)

open Peering_net

type status =
  | Proposed
  | Approved  (** vetted by the advisory board, not yet running *)
  | Active
  | Stopped
  | Rejected of string

val status_to_string : status -> string

type t = {
  id : string;
  owner : string;  (** researcher account *)
  description : string;
  mutable prefixes : Prefix.t list;  (** allocated out of PEERING's pool *)
  mutable v6_prefixes : Prefix6.t list;
      (** IPv6 allocations (/48s out of PEERING's v6 supply) *)
  mutable private_asns : Asn.t list;  (** for emulated client domains *)
  may_poison : bool;
      (** whether the vetting allowed AS-path poisoning (LIFEGUARD-
          style announcements insert real ASNs into the path) *)
  may_spoof : bool;
      (** whether carefully-controlled source spoofing was approved *)
  mutable status : status;
}

val make :
  id:string ->
  owner:string ->
  description:string ->
  ?may_poison:bool ->
  ?may_spoof:bool ->
  unit ->
  t
(** A fresh proposal with no resources. *)

val owns_prefix : t -> Prefix.t -> bool
(** Is the prefix equal to or inside one of the experiment's
    allocations? *)

val owns_v6_prefix : t -> Prefix6.t -> bool

val owns_asn : t -> Asn.t -> bool
(** Is the ASN one of the experiment's private ASNs? *)

val is_active : t -> bool
val pp : Format.formatter -> t -> unit
