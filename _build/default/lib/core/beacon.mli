(** BGP beacons: prefixes announced and withdrawn on a fixed public
    schedule (Mao et al., IMC 2003 — one of the systems Table 1
    compares PEERING against, and a workload PEERING can host
    natively).

    A beacon alternates announce/withdraw through a client at a fixed
    period using the controller's scheduler; every transition is
    visible in the testbed collector, and the schedule is spaced so
    RFC 2439 dampening never suppresses it (the classic beacons used
    2-hour periods for exactly this reason). *)

open Peering_net

type t

val start :
  Testbed.t ->
  Client.t ->
  prefix:Prefix.t ->
  ?period:float ->
  ?rounds:int ->
  unit ->
  t
(** Schedule [rounds] announce/withdraw cycles (default 4) with
    [period] seconds between transitions (default 7200 — the classic
    two hours). The first announcement fires after one period. Drive
    the engine to execute. *)

val events : t -> (float * [ `Announce | `Withdraw ]) list
(** Transitions executed so far, oldest first, with their virtual
    times. *)

val transitions_executed : t -> int
val suppressed : t -> int
(** Announcements refused by safety (dampening) — 0 for a well-spaced
    beacon. *)
