open Peering_net
open Peering_bgp

type link = { server : Server.t; mutable ignored : Asn.Set.t }

type t = {
  id : string;
  experiment : Experiment.t;
  rib : Rib.t;
  mutable links : link list;
}

let create ~id ~experiment () =
  { id; experiment; rib = Rib.create (); links = [] }

let id t = t.id
let experiment t = t.experiment

let rib_key server peer =
  Printf.sprintf "%s/%s" (Server.name server) (Asn.to_string peer)

let find_link t name =
  List.find_opt (fun l -> Server.name l.server = name) t.links

let connect t server =
  if find_link t (Server.name server) <> None then
    invalid_arg "Client.connect: already connected to this server";
  let link = { server; ignored = Asn.Set.empty } in
  t.links <- t.links @ [ link ];
  let callbacks =
    { Server.route_update =
        (fun ~peer route ->
          if not (Asn.Set.mem peer link.ignored) then
            ignore (Rib.announce t.rib ~peer:(rib_key server peer) route));
      route_withdraw =
        (fun ~peer prefix ->
          ignore (Rib.withdraw t.rib ~peer:(rib_key server peer) prefix))
    }
  in
  Server.connect_client server ~experiment:t.experiment ~callbacks t.id

let disconnect t server =
  match find_link t (Server.name server) with
  | None -> ()
  | Some link ->
    Server.disconnect_client server t.id;
    List.iter
      (fun peer ->
        ignore (Rib.drop_peer t.rib ~peer:(rib_key server peer)))
      (Server.peer_asns link.server);
    t.links <- List.filter (fun l -> l != link) t.links

let servers t = List.map (fun l -> Server.name l.server) t.links

let ignore_peer t ~server ~peer =
  match find_link t server with
  | None -> invalid_arg "Client.ignore_peer: not connected to server"
  | Some link ->
    link.ignored <- Asn.Set.add peer link.ignored;
    ignore (Rib.drop_peer t.rib ~peer:(rib_key link.server peer))

let unignore_peer t ~server ~peer =
  match find_link t server with
  | None -> invalid_arg "Client.unignore_peer: not connected to server"
  | Some link -> link.ignored <- Asn.Set.remove peer link.ignored

let selected_links t = function
  | None -> t.links
  | Some names ->
    List.filter (fun l -> List.mem (Server.name l.server) names) t.links

let announce t ?servers ?peers ?path_suffix prefix =
  List.map
    (fun link ->
      ( Server.name link.server,
        Server.announce link.server ~client:t.id ?peers ?path_suffix prefix ))
    (selected_links t servers)

let withdraw t ?servers prefix =
  List.iter
    (fun link -> Server.withdraw link.server ~client:t.id prefix)
    (selected_links t servers)

let rib t = t.rib
let candidates t prefix = Rib.candidates t.rib prefix
let best t prefix = Rib.best t.rib prefix
let route_count t = Rib.route_count t.rib
let prefix_count t = Rib.prefix_count t.rib

let egress_for t addr =
  match Rib.lookup t.rib addr with
  | None -> None
  | Some route -> (
    match route.Route.source with
    | None -> None
    | Some s ->
      (* Recover the (server, peer) from the route's source: sources
         are tagged with the upstream peer's identity by the server. *)
      let peer = s.Route.peer_asn in
      let server_name =
        List.find_map
          (fun l ->
            if List.exists (Asn.equal peer) (Server.peer_asns l.server) then
              Some (Server.name l.server)
            else None)
          t.links
      in
      Option.map (fun n -> (n, peer)) server_name)
