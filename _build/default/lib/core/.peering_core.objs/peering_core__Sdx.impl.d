lib/core/sdx.ml: Asn Fib Forwarder List Packet_program Peering_dataplane Peering_net Peering_sim Prefix Printf
