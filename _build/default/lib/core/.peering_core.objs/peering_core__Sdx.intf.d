lib/core/sdx.mli: Asn Forwarder Packet_program Peering_dataplane Peering_net Peering_sim Prefix
