lib/core/controller.ml: Asn Experiment List Option Peering_net Peering_sim Prefix6 Prefix_pool Printf String
