lib/core/experiment.mli: Asn Format Peering_net Prefix Prefix6
