lib/core/capability.ml: Buffer List Printf
