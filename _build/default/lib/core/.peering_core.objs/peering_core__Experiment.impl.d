lib/core/experiment.ml: Asn Format List Peering_net Prefix Prefix6 String
