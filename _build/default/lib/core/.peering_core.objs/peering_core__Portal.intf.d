lib/core/portal.mli: Experiment Ipv4 Peering_net Testbed
