lib/core/beacon.mli: Client Peering_net Prefix Testbed
