lib/core/capability.mli:
