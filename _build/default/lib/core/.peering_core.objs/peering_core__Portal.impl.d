lib/core/portal.ml: Buffer Controller Experiment Filename Hashtbl Ipv4 List Peering_net Peering_router Prefix Printf String Testbed
