lib/core/client.ml: Asn Experiment List Option Peering_bgp Peering_net Printf Rib Route Server
