lib/core/safety.mli: Asn Dampening Experiment Peering_bgp Peering_net Prefix
