lib/core/controller.mli: Experiment Peering_net Peering_sim Prefix Prefix6
