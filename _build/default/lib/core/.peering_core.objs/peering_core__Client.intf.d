lib/core/client.mli: Asn Experiment Ipv4 Peering_bgp Peering_net Prefix Rib Route Safety Server
