lib/core/safety.ml: Asn Dampening Experiment List Option Peering_bgp Peering_net Prefix Printf
