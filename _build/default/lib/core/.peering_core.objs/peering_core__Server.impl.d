lib/core/server.ml: As_path Asn Attrs Experiment Hashtbl Ipv4 List Option Peering_bgp Peering_net Peering_sim Prefix Printf Route Safety
