lib/core/testbed.mli: Amsix As_graph Asn Client Controller Experiment Fabric Gen Peering_bgp Peering_ixp Peering_measure Peering_net Peering_sim Peering_topo Prefix Propagation Safety Server
