lib/core/beacon.ml: Client Controller List Peering_sim Result Testbed
