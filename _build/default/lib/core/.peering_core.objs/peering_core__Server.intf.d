lib/core/server.mli: Asn Experiment Ipv4 Peering_bgp Peering_net Peering_sim Prefix Route Safety
