open Peering_net
open Peering_dataplane
module Engine = Peering_sim.Engine

type action = Forward_to of Asn.t | Drop_traffic

type rule = {
  description : string;
  matches : Packet_program.match_spec;
  action : action;
}

type participant = {
  asn : Asn.t;
  node : Forwarder.node_id;
  mutable announced : Prefix.t list;
  mutable rules : rule list;
  mutable delivered : int;
}

type t = {
  engine : Engine.t;
  fwd : Forwarder.t;
  node : Forwarder.node_id;
  mutable participants : participant list;
  mutable rejected : (Asn.t * string) list;
}

let create engine fwd ~name () =
  let node = Printf.sprintf "sdx:%s" name in
  Forwarder.add_node fwd node;
  { engine; fwd; node; participants = []; rejected = [] }

let fabric_node t = t.node

let find t asn = List.find_opt (fun p -> Asn.equal p.asn asn) t.participants

let find_exn t asn =
  match find t asn with
  | Some p -> p
  | None -> invalid_arg "Sdx: unknown participant"

let attach_participant t ~asn ~node =
  if find t asn <> None then invalid_arg "Sdx: duplicate participant";
  t.participants <-
    t.participants
    @ [ { asn; node; announced = []; rules = []; delivered = 0 } ]

let announce t ~from prefix =
  let p = find_exn t from in
  if not (List.exists (Prefix.equal prefix) p.announced) then
    p.announced <- p.announced @ [ prefix ]

let set_policy t ~asn rules = (find_exn t asn).rules <- rules

(* A Forward_to override is sound only if the target announced a route
   covering every destination the rule can match; with a dst_in match
   that means a covering announcement, without one it would hijack the
   whole table, so we require dst_in. *)
let reachability_ok target_participant (rule : rule) =
  match rule.matches.Packet_program.dst_in with
  | None -> false
  | Some dst ->
    List.exists
      (fun announced -> Prefix.subsumes announced dst
                        || Prefix.subsumes dst announced)
      target_participant.announced

let compile t =
  t.rejected <- [];
  (* BGP layer: longest-prefix forwarding toward the first announcer. *)
  List.iter
    (fun (p : participant) ->
      List.iter
        (fun prefix -> Forwarder.set_route t.fwd t.node prefix (Fib.Via p.node))
        p.announced)
    t.participants;
  (* Delivery accounting at each participant edge. *)
  List.iter
    (fun (p : participant) ->
      List.iter
        (fun prefix -> Forwarder.set_route t.fwd p.node prefix Fib.Local)
        p.announced;
      Forwarder.on_deliver t.fwd p.node (fun _ -> p.delivered <- p.delivered + 1))
    t.participants;
  (* Policy layer: compose all participants' rules into one program.
     Order: participant attach order, then rule order. *)
  let compiled = ref [] in
  let failure = ref None in
  List.iter
    (fun (p : participant) ->
      List.iter
        (fun rule ->
          match rule.action with
          | Drop_traffic ->
            compiled :=
              !compiled
              @ [ { Packet_program.name = rule.description;
                    spec = rule.matches;
                    action = Packet_program.Drop
                  } ]
          | Forward_to target -> (
            match find t target with
            | None ->
              failure :=
                Some
                  (Printf.sprintf "rule %S forwards to unattached %s"
                     rule.description (Asn.to_string target))
            | Some tp ->
              if reachability_ok tp rule then
                compiled :=
                  !compiled
                  @ [ { Packet_program.name = rule.description;
                        spec = rule.matches;
                        action = Packet_program.Divert tp.node
                      } ]
              else
                t.rejected <-
                  t.rejected
                  @ [ ( p.asn,
                        Printf.sprintf
                          "%s: target %s has no covering announcement"
                          rule.description (Asn.to_string target) ) ]))
        p.rules)
    t.participants;
  match !failure with
  | Some msg -> Error msg
  | None ->
    let program =
      Packet_program.compile t.engine
        (!compiled
        @ [ { Packet_program.name = "bgp-default";
              spec = Packet_program.match_any;
              action = Packet_program.Allow
            } ])
    in
    Packet_program.install program t.fwd t.node;
    Ok ()

let rejected_rules t = t.rejected
let delivered_to t asn = (find_exn t asn).delivered
