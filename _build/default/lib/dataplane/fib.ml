open Peering_net

type 'a action = Local | Via of 'a | Blackhole | Unreachable

type 'a t = 'a action Prefix_trie.t

let empty = Prefix_trie.empty
let add = Prefix_trie.add
let remove = Prefix_trie.remove
let lookup addr t = Option.map snd (Prefix_trie.longest_match addr t)
let lookup_prefix addr t = Prefix_trie.longest_match addr t
let cardinal = Prefix_trie.cardinal
let to_list = Prefix_trie.to_list

let default_route nh t =
  add (Prefix.make (Ipv4.of_int 0) 0) (Via nh) t
