open Peering_net
module Engine = Peering_sim.Engine

let anti_spoof ~allowed (pkt : Packet.t) =
  List.exists (fun p -> Prefix.mem pkt.Packet.src p) allowed

let experiment_traffic_only ~experiment (pkt : Packet.t) =
  List.exists
    (fun p -> Prefix.mem pkt.Packet.src p || Prefix.mem pkt.Packet.dst p)
    experiment

let conjoin filters pkt = List.for_all (fun f -> f pkt) filters

type rate_limiter = {
  engine : Engine.t;
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let rate_limiter engine ~rate_bytes_per_s ~burst_bytes =
  { engine;
    rate = rate_bytes_per_s;
    burst = burst_bytes;
    tokens = burst_bytes;
    last = Engine.now engine
  }

let rate_allow rl (pkt : Packet.t) =
  let now = Engine.now rl.engine in
  let dt = now -. rl.last in
  rl.last <- now;
  rl.tokens <- Float.min rl.burst (rl.tokens +. (dt *. rl.rate));
  let need = float_of_int pkt.Packet.size in
  if rl.tokens >= need then begin
    rl.tokens <- rl.tokens -. need;
    true
  end
  else false

let rate_filter = rate_allow
