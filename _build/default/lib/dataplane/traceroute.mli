(** Traceroute over the simulated dataplane.

    Sends TTL-limited probes from a node, collects the ICMP
    time-exceeded sources, and reconstructs the forward path — the
    measurement primitive PECAN-style experiments use to compare
    alternate paths (paper §2, "Control of traffic"). *)

open Peering_net

type hop = {
  ttl : int;
  responder : Ipv4.t option;  (** [None] = no reply ("*") *)
  rtt : float option;
}

type result = {
  target : Ipv4.t;
  hops : hop list;  (** ascending TTL *)
  reached : bool;
}

val run :
  Forwarder.t ->
  Peering_sim.Engine.t ->
  src_node:Forwarder.node_id ->
  target:Ipv4.t ->
  ?max_ttl:int ->
  unit ->
  result
(** Run a complete traceroute. The engine is driven internally until
    all probes resolve or time out (2 s virtual per probe). *)

val pp : Format.formatter -> result -> unit

val path_addresses : result -> Ipv4.t list
(** The responding hop addresses, in order. *)
