(** Simulated IP packets. *)

open Peering_net

type proto =
  | Udp of { sport : int; dport : int }
  | Tcp of { sport : int; dport : int }
  | Icmp of icmp

and icmp =
  | Echo_request of int  (** sequence *)
  | Echo_reply of int
  | Ttl_exceeded of { original_dst : Ipv4.t; original_id : int }
  | Dest_unreachable of { original_dst : Ipv4.t; original_id : int }

type t = {
  id : int;
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  proto : proto;
  size : int;  (** bytes, for rate limiting / accounting *)
}

val make : ?ttl:int -> ?size:int -> ?proto:proto -> src:Ipv4.t -> dst:Ipv4.t -> unit -> t
(** Fresh packet with a unique id. Defaults: ttl 64, size 64 bytes,
    UDP 33434→33434 (traceroute-style). *)

val decrement_ttl : t -> t option
(** [None] when the TTL would reach zero. *)

val pp : Format.formatter -> t -> unit
