open Peering_net
module Engine = Peering_sim.Engine

type match_spec = {
  src_in : Prefix.t option;
  dst_in : Prefix.t option;
  proto : [ `Udp | `Tcp | `Icmp ] option;
  dport : int option;
}

let match_any = { src_in = None; dst_in = None; proto = None; dport = None }

let proto_of (pkt : Packet.t) =
  match pkt.Packet.proto with
  | Packet.Udp _ -> `Udp
  | Packet.Tcp _ -> `Tcp
  | Packet.Icmp _ -> `Icmp

let dport_of (pkt : Packet.t) =
  match pkt.Packet.proto with
  | Packet.Udp { dport; _ } | Packet.Tcp { dport; _ } -> Some dport
  | Packet.Icmp _ -> None

let matches spec (pkt : Packet.t) =
  (match spec.src_in with
  | Some p -> Prefix.mem pkt.Packet.src p
  | None -> true)
  && (match spec.dst_in with
     | Some p -> Prefix.mem pkt.Packet.dst p
     | None -> true)
  && (match spec.proto with Some pr -> proto_of pkt = pr | None -> true)
  && match spec.dport with
     | Some port -> dport_of pkt = Some port
     | None -> true

type action =
  | Allow
  | Drop
  | Rewrite_dst of Ipv4.t
  | Rewrite_src of Ipv4.t
  | Divert of Forwarder.node_id
  | Rate_limit of rate_spec
  | Mirror of Forwarder.node_id

and rate_spec = { bytes_per_s : float; burst : float }

type rule = { name : string; spec : match_spec; action : action }

type compiled_rule = {
  rule : rule;
  limiter : Filter.rate_limiter option;
  mutable hit_count : int;
}

type t = {
  engine : Engine.t;
  rules : compiled_rule list;
  mutable n_dropped : int;
  mutable n_diverted : int;
  mutable n_rewritten : int;
}

let compile engine rules =
  let compiled =
    List.map
      (fun rule ->
        let limiter =
          match rule.action with
          | Rate_limit { bytes_per_s; burst } ->
            Some (Filter.rate_limiter engine ~rate_bytes_per_s:bytes_per_s
                    ~burst_bytes:burst)
          | Allow | Drop | Rewrite_dst _ | Rewrite_src _ | Divert _ | Mirror _
            -> None
        in
        { rule; limiter; hit_count = 0 })
      rules
  in
  { engine; rules = compiled; n_dropped = 0; n_diverted = 0; n_rewritten = 0 }

(* The ingress-filter contract is a boolean (keep / drop); rewrites and
   diversions are realised by dropping the original and re-injecting a
   modified copy. A diverted/rewritten packet is tagged by bumping
   nothing — re-injection goes through [Forwarder.inject], which does
   not re-run ingress at the *entry* node, avoiding self-loops. *)
let install t fwd node =
  Forwarder.set_ingress_filter fwd node (fun pkt ->
      let rec eval = function
        | [] -> true
        | c :: rest ->
          if not (matches c.rule.spec pkt) then eval rest
          else begin
            c.hit_count <- c.hit_count + 1;
            match c.rule.action with
            | Allow -> true
            | Drop ->
              t.n_dropped <- t.n_dropped + 1;
              false
            | Rate_limit _ -> (
              match c.limiter with
              | Some l ->
                if Filter.rate_allow l pkt then true
                else begin
                  t.n_dropped <- t.n_dropped + 1;
                  false
                end
              | None -> true)
            | Rewrite_dst dst ->
              t.n_rewritten <- t.n_rewritten + 1;
              let pkt' = { pkt with Packet.dst } in
              Engine.schedule t.engine ~delay:0.0 (fun () ->
                  Forwarder.inject fwd ~at:node pkt');
              false
            | Rewrite_src src ->
              t.n_rewritten <- t.n_rewritten + 1;
              let pkt' = { pkt with Packet.src } in
              Engine.schedule t.engine ~delay:0.0 (fun () ->
                  Forwarder.inject fwd ~at:node pkt');
              false
            | Divert target ->
              t.n_diverted <- t.n_diverted + 1;
              Engine.schedule t.engine ~delay:0.0 (fun () ->
                  Forwarder.inject fwd ~at:target pkt);
              false
            | Mirror target ->
              Engine.schedule t.engine ~delay:0.0 (fun () ->
                  Forwarder.inject fwd ~at:target pkt);
              true
          end
      in
      eval t.rules)

let hits t name =
  List.fold_left
    (fun acc c -> if c.rule.name = name then acc + c.hit_count else acc)
    0 t.rules

let dropped t = t.n_dropped
let diverted t = t.n_diverted
let rewritten t = t.n_rewritten
