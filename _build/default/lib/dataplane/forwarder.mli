(** Hop-by-hop packet forwarding over a node graph.

    Nodes are named; each has addresses, a FIB whose next hops are
    other node names, optional ingress filters, and a delivery handler.
    Packets move one hop per simulated link latency; TTL expiry
    generates ICMP time-exceeded back to the source, which is what
    makes {!Traceroute} work. *)

open Peering_net

type node_id = string

type t

val create : Peering_sim.Engine.t -> t

val add_node : t -> node_id -> unit
(** Idempotent. *)

val add_address : t -> node_id -> Ipv4.t -> unit
(** Attach an address; the first becomes the node's primary (used as
    the source of ICMP it generates). *)

val node_of_address : t -> Ipv4.t -> node_id option

val addresses : t -> node_id -> Ipv4.t list
(** Addresses attached to a node, in attachment order. *)

val primary_address : t -> node_id -> Ipv4.t option
(** First attached address, if any. *)

val get_deliver : t -> node_id -> (Packet.t -> unit) option
(** The node's current delivery handler (for save/restore by
    measurement tools). *)

val set_link_latency : t -> node_id -> node_id -> float -> unit
(** Per-hop latency for this ordered pair (default 0.005 s). *)

val set_route : t -> node_id -> Prefix.t -> node_id Fib.action -> unit
val del_route : t -> node_id -> Prefix.t -> unit
val fib : t -> node_id -> node_id Fib.t

val set_ingress_filter : t -> node_id -> (Packet.t -> bool) -> unit
(** Packets failing the filter are dropped on arrival (spoofing
    control, rate limiting). *)

val on_deliver : t -> node_id -> (Packet.t -> unit) -> unit
(** Handler for packets that reach a [Local] route at this node. A
    node without a handler counts deliveries silently. *)

val inject : t -> at:node_id -> Packet.t -> unit
(** Start forwarding a packet from the given node. *)

val send_and_reply : t -> at:node_id -> Packet.t -> unit
(** Inject an ICMP echo request and automatically answer it from the
    destination node if the destination has the address; used by ping
    measurements. Non-echo packets behave as {!inject}. *)

(** Statistics, cumulative since creation. *)

val delivered : t -> int
val dropped_ttl : t -> int
val dropped_no_route : t -> int
val dropped_filtered : t -> int
val dropped_blackhole : t -> int
val hops_forwarded : t -> int
