lib/dataplane/filter.ml: Float List Packet Peering_net Peering_sim Prefix
