lib/dataplane/forwarder.mli: Fib Ipv4 Packet Peering_net Peering_sim Prefix
