lib/dataplane/fib.ml: Ipv4 Option Peering_net Prefix Prefix_trie
