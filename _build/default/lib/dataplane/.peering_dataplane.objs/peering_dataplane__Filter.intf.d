lib/dataplane/filter.mli: Packet Peering_net Peering_sim Prefix
