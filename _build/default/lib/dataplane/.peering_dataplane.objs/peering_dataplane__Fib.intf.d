lib/dataplane/fib.mli: Ipv4 Peering_net Prefix
