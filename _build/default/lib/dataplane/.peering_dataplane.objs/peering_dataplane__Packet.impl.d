lib/dataplane/packet.ml: Format Ipv4 Peering_net Printf
