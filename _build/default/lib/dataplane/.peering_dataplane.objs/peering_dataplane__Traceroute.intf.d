lib/dataplane/traceroute.mli: Format Forwarder Ipv4 Peering_net Peering_sim
