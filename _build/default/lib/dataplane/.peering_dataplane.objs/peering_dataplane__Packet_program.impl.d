lib/dataplane/packet_program.ml: Filter Forwarder Ipv4 List Packet Peering_net Peering_sim Prefix
