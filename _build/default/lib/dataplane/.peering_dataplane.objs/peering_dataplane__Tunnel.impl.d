lib/dataplane/tunnel.ml: Fib Forwarder Ipv4 Packet Peering_net Peering_sim Prefix Printf
