lib/dataplane/tunnel.mli: Forwarder Packet Peering_net Peering_sim Prefix
