lib/dataplane/traceroute.ml: Fib Format Forwarder Ipv4 List Packet Peering_net Peering_sim Prefix
