lib/dataplane/forwarder.ml: Fib Hashtbl Ipv4 Option Packet Peering_net Peering_sim Prefix Printf
