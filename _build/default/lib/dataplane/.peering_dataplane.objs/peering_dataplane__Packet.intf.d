lib/dataplane/packet.mli: Format Ipv4 Peering_net
