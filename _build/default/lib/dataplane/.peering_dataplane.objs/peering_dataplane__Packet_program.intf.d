lib/dataplane/packet_program.mli: Forwarder Ipv4 Packet Peering_net Peering_sim Prefix
