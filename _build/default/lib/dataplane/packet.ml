open Peering_net

type proto =
  | Udp of { sport : int; dport : int }
  | Tcp of { sport : int; dport : int }
  | Icmp of icmp

and icmp =
  | Echo_request of int
  | Echo_reply of int
  | Ttl_exceeded of { original_dst : Ipv4.t; original_id : int }
  | Dest_unreachable of { original_dst : Ipv4.t; original_id : int }

type t = {
  id : int;
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  proto : proto;
  size : int;
}

let counter = ref 0

let make ?(ttl = 64) ?(size = 64)
    ?(proto = Udp { sport = 33434; dport = 33434 }) ~src ~dst () =
  incr counter;
  { id = !counter; src; dst; ttl; proto; size }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let proto_string = function
  | Udp { sport; dport } -> Printf.sprintf "udp %d>%d" sport dport
  | Tcp { sport; dport } -> Printf.sprintf "tcp %d>%d" sport dport
  | Icmp (Echo_request n) -> Printf.sprintf "icmp echo-req %d" n
  | Icmp (Echo_reply n) -> Printf.sprintf "icmp echo-rep %d" n
  | Icmp (Ttl_exceeded _) -> "icmp ttl-exceeded"
  | Icmp (Dest_unreachable _) -> "icmp unreachable"

let pp ppf t =
  Format.fprintf ppf "#%d %s -> %s ttl=%d %s" t.id (Ipv4.to_string t.src)
    (Ipv4.to_string t.dst) t.ttl (proto_string t.proto)
