(** The lightweight packet-processing API of paper §3: "we plan to
    expose a lightweight packet processing API (e.g., running an
    OpenFlow software switch or extending Linux's iptables) to provide
    common packet processing capabilities to clients at lower
    overhead".

    A program is an ordered list of match-action rules, evaluated
    first-match like an OpenFlow table. Programs install at a
    forwarder node and run on every arriving packet, before the FIB:
    they can drop, count, rewrite, rate-limit, divert to another node,
    or fall through to normal forwarding. *)

open Peering_net

type match_spec = {
  src_in : Prefix.t option;  (** None = wildcard *)
  dst_in : Prefix.t option;
  proto : [ `Udp | `Tcp | `Icmp ] option;
  dport : int option;  (** UDP/TCP destination port *)
}

val match_any : match_spec

val matches : match_spec -> Packet.t -> bool

type action =
  | Allow  (** continue to the FIB *)
  | Drop
  | Rewrite_dst of Ipv4.t  (** then continue to the FIB *)
  | Rewrite_src of Ipv4.t
      (** controlled spoofing — the experiment must be vetted *)
  | Divert of Forwarder.node_id  (** re-inject at another node *)
  | Rate_limit of rate_spec
  | Mirror of Forwarder.node_id
      (** copy to another node, original continues *)

and rate_spec = { bytes_per_s : float; burst : float }

type rule = {
  name : string;
  spec : match_spec;
  action : action;
}

type t

val compile :
  Peering_sim.Engine.t -> rule list -> t
(** Build a program; rate limiters are bound to the engine's clock. *)

val install : t -> Forwarder.t -> Forwarder.node_id -> unit
(** Attach the program at a node. Packets arriving at (not originated
    by) the node traverse the rules; [Allow] or no match falls through
    to the node's FIB. Replaces any previous program/ingress filter at
    the node. *)

val hits : t -> string -> int
(** Packets matched by the named rule so far. *)

val dropped : t -> int
val diverted : t -> int
val rewritten : t -> int
