(** Dataplane safety filters.

    PEERING "only carries traffic coming from or destined to an
    experiment" and permits "only carefully controlled source address
    spoofing" (paper §2–3). These combinators build the ingress
    predicates its servers install. *)

open Peering_net

val anti_spoof : allowed:Prefix.t list -> Packet.t -> bool
(** Accept only packets whose source lies inside one of the allowed
    prefixes. *)

val experiment_traffic_only : experiment:Prefix.t list -> Packet.t -> bool
(** Accept packets whose source {e or} destination is inside the
    experiment's prefixes — PEERING's "no transit for non-PEERING
    destinations" rule. *)

val conjoin : (Packet.t -> bool) list -> Packet.t -> bool

type rate_limiter

val rate_limiter :
  Peering_sim.Engine.t -> rate_bytes_per_s:float -> burst_bytes:float ->
  rate_limiter
(** Token bucket against virtual time. *)

val rate_allow : rate_limiter -> Packet.t -> bool
(** Consume tokens for the packet; [false] when the bucket is empty
    (drop). *)

val rate_filter : rate_limiter -> Packet.t -> bool
(** {!rate_allow} in filter shape (same function, provided for
    symmetry with the other combinators). *)
