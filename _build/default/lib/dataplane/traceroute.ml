open Peering_net
module Engine = Peering_sim.Engine

type hop = {
  ttl : int;
  responder : Ipv4.t option;
  rtt : float option;
}

type result = {
  target : Ipv4.t;
  hops : hop list;
  reached : bool;
}

let probe_timeout = 2.0

(* One TTL-limited probe; returns (responder, rtt, reached_target). *)
let probe fwd engine ~src_node ~src_addr ~target ~ttl =
  let answer : (Ipv4.t * float * bool) option ref = ref None in
  let sent_at = Engine.now engine in
  let pkt =
    Packet.make ~ttl ~src:src_addr ~dst:target
      ~proto:(Packet.Udp { sport = 33434; dport = 33434 + ttl })
      ()
  in
  let probe_id = pkt.Packet.id in
  (* Capture ICMP errors coming back to the source. *)
  let saved_src = Forwarder.get_deliver fwd src_node in
  Forwarder.on_deliver fwd src_node (fun (p : Packet.t) ->
      match p.Packet.proto with
      | Packet.Icmp (Packet.Ttl_exceeded { original_id; _ })
        when original_id = probe_id && !answer = None ->
        answer := Some (p.Packet.src, Engine.now engine -. sent_at, false)
      | Packet.Icmp (Packet.Dest_unreachable { original_id; _ })
        when original_id = probe_id && !answer = None ->
        answer := Some (p.Packet.src, Engine.now engine -. sent_at, true)
      | _ -> ( match saved_src with Some f -> f p | None -> ()));
  (* If the target is one of our nodes, emulate the port-unreachable a
     real host sends back for high-port UDP probes. *)
  let saved_dst =
    match Forwarder.node_of_address fwd target with
    | Some dst_node when dst_node <> src_node ->
      let saved = Forwarder.get_deliver fwd dst_node in
      Forwarder.on_deliver fwd dst_node (fun (p : Packet.t) ->
          if p.Packet.id = probe_id then
            Forwarder.inject fwd ~at:dst_node
              (Packet.make ~src:target ~dst:p.Packet.src
                 ~proto:
                   (Packet.Icmp
                      (Packet.Dest_unreachable
                         { original_dst = p.Packet.dst;
                           original_id = p.Packet.id
                         }))
                 ())
          else match saved with Some f -> f p | None -> ());
      Some (dst_node, saved)
    | _ -> None
  in
  Forwarder.inject fwd ~at:src_node pkt;
  Engine.run_for engine probe_timeout;
  (* Restore handlers. *)
  (match saved_src with
  | Some f -> Forwarder.on_deliver fwd src_node f
  | None -> Forwarder.on_deliver fwd src_node (fun _ -> ()));
  (match saved_dst with
  | Some (dst_node, Some f) -> Forwarder.on_deliver fwd dst_node f
  | Some (dst_node, None) -> Forwarder.on_deliver fwd dst_node (fun _ -> ())
  | None -> ());
  !answer

let run fwd engine ~src_node ~target ?(max_ttl = 30) () =
  let src_addr =
    match Forwarder.primary_address fwd src_node with
    | Some a -> a
    | None -> invalid_arg "Traceroute.run: source node has no address"
  in
  (* The source must deliver its own address locally to hear replies. *)
  Forwarder.set_route fwd src_node (Prefix.make src_addr 32) Fib.Local;
  let rec go ttl acc =
    if ttl > max_ttl then (List.rev acc, false)
    else
      match probe fwd engine ~src_node ~src_addr ~target ~ttl with
      | Some (responder, rtt, reached) ->
        let hop = { ttl; responder = Some responder; rtt = Some rtt } in
        if reached then (List.rev (hop :: acc), true)
        else go (ttl + 1) (hop :: acc)
      | None ->
        let hop = { ttl; responder = None; rtt = None } in
        go (ttl + 1) (hop :: acc)
  in
  let hops, reached = go 1 [] in
  { target; hops; reached }

let pp ppf r =
  Format.fprintf ppf "traceroute to %s@." (Ipv4.to_string r.target);
  List.iter
    (fun h ->
      match (h.responder, h.rtt) with
      | Some a, Some rtt ->
        Format.fprintf ppf "%2d  %-15s  %.1f ms@." h.ttl (Ipv4.to_string a)
          (rtt *. 1000.0)
      | _ -> Format.fprintf ppf "%2d  *@." h.ttl)
    r.hops;
  if r.reached then Format.fprintf ppf "reached@."

let path_addresses r = List.filter_map (fun h -> h.responder) r.hops
