(** Forwarding information base: longest-prefix-match table from
    prefixes to forwarding actions. *)

open Peering_net

type 'a action =
  | Local  (** deliver to this node's stack *)
  | Via of 'a  (** forward to a next hop *)
  | Blackhole  (** drop silently *)
  | Unreachable  (** drop with ICMP unreachable *)

type 'a t

val empty : 'a t
val add : Prefix.t -> 'a action -> 'a t -> 'a t
val remove : Prefix.t -> 'a t -> 'a t
val lookup : Ipv4.t -> 'a t -> 'a action option
(** Longest-prefix match; [None] when no route covers the address. *)

val lookup_prefix : Ipv4.t -> 'a t -> (Prefix.t * 'a action) option
val cardinal : 'a t -> int
val to_list : 'a t -> (Prefix.t * 'a action) list
val default_route : 'a -> 'a t -> 'a t
(** Install 0.0.0.0/0 via the given next hop. *)
