(** IPv6 addresses (RFC 4291), with RFC 5952 canonical text form.

    The paper lists IPv6 support among PEERING's planned extensions
    ("we also plan to add support for IPv6", §3); this module and
    {!Prefix6} provide the address substrate, and the controller hands
    out /48 experiment blocks from a v6 supply. *)

type t = private { hi : int64; lo : int64 }
(** 128 bits, network byte order: [hi] holds bits 0–63. *)

val make : int64 -> int64 -> t

val of_string : string -> t option
(** Parses full, compressed ([::]) and mixed-case hexadecimal forms.
    (IPv4-mapped tails like [::ffff:1.2.3.4] are not supported.) *)

val of_string_exn : string -> t

val to_string : t -> string
(** RFC 5952 canonical form: lowercase, longest zero run compressed
    (leftmost on ties, never a single group). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val bit : t -> int -> bool
(** [bit a i] is bit [i], 0 = most significant. [0 <= i < 128]. *)

val add : t -> int64 -> t
(** Add to the low 64 bits with carry into the high bits. *)

val pp : Format.formatter -> t -> unit
