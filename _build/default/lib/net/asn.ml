type t = int

let max_asn = 0xFFFFFFFF

let of_int n =
  if n < 0 || n > max_asn then invalid_arg "Asn.of_int: out of range";
  n

let to_int a = a

let is_private a =
  (a >= 64512 && a <= 65534) || (a >= 4200000000 && a <= 4294967294)

let is_reserved a = a = 0 || a = 23456 || a = 65535 || a = max_asn

let compare = Int.compare
let equal = Int.equal
let hash a = a
let to_string a = Printf.sprintf "AS%d" a
let pp ppf a = Format.pp_print_string ppf (to_string a)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
