(** Patricia trie keyed by IPv4 prefixes, supporting exact lookup and
    longest-prefix match.

    This is the substrate for both BGP RIBs and dataplane FIBs. The
    trie is immutable; updates return new tries sharing structure. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding. *)

val remove : Prefix.t -> 'a t -> 'a t

val find : Prefix.t -> 'a t -> 'a option
(** Exact-match lookup. *)

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] adjusts the binding at [p] through [f]; [f None]
    inserting, [f (Some v)] replacing or ([None]) deleting. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [longest_match a t] is the most specific prefix in [t] containing
    address [a], with its value. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All prefixes containing [a], most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** [covered p t] lists bindings whose prefix is contained in [p]
    (equal or more specific), in address order. *)

val cardinal : 'a t -> int
val mem : Prefix.t -> 'a t -> bool

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In-order fold over all bindings. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t

val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in address order. *)

val of_list : (Prefix.t * 'a) list -> 'a t
