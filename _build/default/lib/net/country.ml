type t = string

let of_string s =
  if String.length s = 2
     && String.for_all
          (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
          s
  then Some (String.uppercase_ascii s)
  else None

let of_string_exn s =
  match of_string s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Country.of_string_exn: %S" s)

let to_string c = c
let nl = "NL"

let pool =
  [| "NL"; "DE"; "GB"; "US"; "FR"; "BE"; "SE"; "CH"; "RU"; "UA";
     "PL"; "CZ"; "AT"; "IT"; "ES"; "PT"; "DK"; "NO"; "FI"; "IE";
     "RO"; "BG"; "HU"; "SK"; "SI"; "HR"; "RS"; "GR"; "TR"; "IL";
     "AE"; "SA"; "IN"; "PK"; "BD"; "LK"; "SG"; "MY"; "TH"; "VN";
     "ID"; "PH"; "HK"; "TW"; "JP"; "KR"; "CN"; "AU"; "NZ"; "ZA";
     "EG"; "NG"; "KE"; "GH"; "TZ"; "MA"; "TN"; "AO"; "MU"; "BR";
     "AR"; "CL"; "CO"; "PE"; "VE"; "EC"; "UY"; "PY"; "BO"; "MX";
     "CA"; "PA"; "CR"; "GT"; "DO"; "JM"; "TT"; "IS"; "EE"; "LV";
     "LT"; "LU"; "MT"; "CY"; "MD"; "GE"; "AM"; "AZ"; "KZ"; "UZ";
     "MN"; "NP"; "KH"; "LA"; "MM"; "BN" |]

let compare = String.compare
let equal = String.equal
let pp ppf c = Format.pp_print_string ppf c

module Set = Set.Make (String)
