(** IPv6 CIDR prefixes, mirroring {!Prefix} for the v6 space. *)

type t = private { addr : Ipv6.t; len : int }

val make : Ipv6.t -> int -> t
(** Host bits cleared; [0 <= len <= 128]. *)

val of_string : string -> t option
(** ["2804:269c::/32"]; a bare address is a /128. *)

val of_string_exn : string -> t
val to_string : t -> string
val addr : t -> Ipv6.t
val len : t -> int
val mem : Ipv6.t -> t -> bool
val subsumes : t -> t -> bool
val nth_subprefix : t -> int -> int -> t
(** [nth_subprefix p l i]: the [i]-th length-[l] subprefix, [i] within
    the low 62 bits of range. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

(** Allocation of fixed-length blocks (e.g. /48 experiment slices out
    of PEERING's /32), the v6 counterpart of {!Prefix_pool}. *)
module Pool : sig
  type pool

  val create : alloc_len:int -> t -> pool
  (** One supply prefix; allocations are length [alloc_len]. The
      supply may cover an astronomic number of blocks; allocation is
      a cursor, and [free] returns blocks for reuse. *)

  val alloc : pool -> (t * pool) option
  val free : t -> pool -> (pool, [ `Not_allocated ]) result
  val allocated : pool -> t list
  val mem_supply : t -> pool -> bool
end
