(** Autonomous System Numbers.

    We support 4-byte ASNs (RFC 6793). The private ranges matter to
    PEERING: emulated client domains sit on private ASNs that the mux
    strips before announcements reach real peers. *)

type t = private int

val of_int : int -> t
(** [of_int n] is ASN [n]. Raises [Invalid_argument] if [n] is negative
    or exceeds the 32-bit ASN space. *)

val to_int : t -> int

val is_private : t -> bool
(** [is_private a] is [true] for 64512–65534 (RFC 6996 16-bit range)
    and 4200000000–4294967294 (32-bit range). *)

val is_reserved : t -> bool
(** AS 0, AS 23456 (AS_TRANS), 65535 and 4294967295. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
