(** IPv4 addresses.

    Addresses are represented as non-negative integers in the range
    [0, 2^32 - 1], stored in the native [int] (OCaml ints are 63-bit on
    every platform we target, so the full IPv4 space fits). *)

type t = private int
(** An IPv4 address. The representation is the address as a big-endian
    32-bit unsigned integer. *)

val of_int : int -> t
(** [of_int n] is the address with numeric value [n land 0xFFFFFFFF]. *)

val to_int : t -> int
(** [to_int a] is the numeric value of [a]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet is masked
    to 8 bits. *)

val to_octets : t -> int * int * int * int
(** [to_octets a] splits [a] into its four octets, most significant
    first. *)

val of_string : string -> t option
(** [of_string s] parses dotted-quad notation ["a.b.c.d"]. Returns
    [None] on malformed input or octets outside [0, 255]. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on parse failure. *)

val to_string : t -> string
(** [to_string a] is the dotted-quad rendering of [a]. *)

val compare : t -> t -> int
(** Total order on addresses (numeric). *)

val equal : t -> t -> bool

val succ : t -> t
(** [succ a] is the next address, wrapping at the end of the space. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n] addresses, wrapping modulo 2^32. *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant
    bit. Raises [Invalid_argument] unless [0 <= i < 32]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (dotted quad). *)
