type t = { addr : Ipv4.t; len : int }

let network_mask len =
  if len = 0 then 0 else 0xFFFFFFFF lxor ((1 lsl (32 - len)) - 1)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
  { addr = Ipv4.of_int (Ipv4.to_int addr land network_mask len); len }

let addr p = p.addr
let len p = p.len

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string s)
  | Some i -> (
    let addr_s = String.sub s 0 i in
    let len_s = String.sub s (i + 1) (String.length s - i - 1) in
    match (Ipv4.of_string addr_s, int_of_string_opt len_s) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
    | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len

let mem a p =
  Ipv4.to_int a land network_mask p.len = Ipv4.to_int p.addr

let subsumes p q = p.len <= q.len && mem q.addr p
let overlaps p q = subsumes p q || subsumes q p

let first p = p.addr

let last p =
  Ipv4.of_int (Ipv4.to_int p.addr lor (0xFFFFFFFF lxor network_mask p.len))

let size p = 1 lsl (32 - p.len)

let split p =
  if p.len = 32 then None
  else
    let l = p.len + 1 in
    let lo = make p.addr l in
    let hi = make (Ipv4.add p.addr (1 lsl (32 - l))) l in
    Some (lo, hi)

let nth_subprefix p l i =
  if l < p.len || l > 32 then invalid_arg "Prefix.nth_subprefix";
  let step = 1 lsl (32 - l) in
  make (Ipv4.add p.addr (i * step)) l

let subprefixes p l =
  if l < p.len || l > 32 then invalid_arg "Prefix.subprefixes";
  let n = 1 lsl (l - p.len) in
  List.init n (fun i -> nth_subprefix p l i)

let compare p q =
  match Ipv4.compare p.addr q.addr with
  | 0 -> Int.compare p.len q.len
  | c -> c

let equal p q = compare p q = 0
let hash p = (Ipv4.to_int p.addr * 33) + p.len
let pp ppf p = Format.pp_print_string ppf (to_string p)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
