(* Path-compressed binary trie. Invariants: a [Node]'s children are
   strictly more specific than its [prefix]; the left child continues
   with bit 0 at position [len prefix], the right child with bit 1; an
   [Empty] child is allowed; a node with [value = None] has two
   non-empty children or is the root of a just-built intermediate that
   [collapse] will normalise. *)

type 'a t =
  | Empty
  | Node of { prefix : Prefix.t; value : 'a option; left : 'a t; right : 'a t }

let empty = Empty
let is_empty t = t = Empty

(* Length of the common prefix of [a] and [b], capped at [limit]. *)
let common_len a b limit =
  let x = Ipv4.to_int a lxor Ipv4.to_int b in
  if x = 0 then limit
  else
    let rec go i =
      if i >= limit then limit
      else if (x lsr (31 - i)) land 1 = 1 then i
      else go (i + 1)
    in
    go 0

let node prefix value left right = Node { prefix; value; left; right }

(* Re-establish invariants after a deletion: drop valueless nodes with
   fewer than two children. *)
let collapse prefix value left right =
  match (value, left, right) with
  | None, Empty, Empty -> Empty
  | None, (Node _ as child), Empty | None, Empty, (Node _ as child) -> child
  | _ -> node prefix value left right

(* Which child of a node with prefix [np] does prefix/address bits of
   [q] continue into? [true] = right (bit 1). *)
let goes_right np q_addr = Ipv4.bit q_addr (Prefix.len np)

let rec add p v t =
  match t with
  | Empty -> node p (Some v) Empty Empty
  | Node n ->
    let np = n.prefix in
    let cl =
      common_len (Prefix.addr p) (Prefix.addr np)
        (min (Prefix.len p) (Prefix.len np))
    in
    if cl = Prefix.len np then
      if Prefix.len p = Prefix.len np then
        node np (Some v) n.left n.right
      else if goes_right np (Prefix.addr p) then
        node np n.value n.left (add p v n.right)
      else node np n.value (add p v n.left) n.right
    else if cl = Prefix.len p then
      (* [p] is a strict ancestor of [np]: [t] becomes a child. *)
      if goes_right p (Prefix.addr np) then node p (Some v) Empty t
      else node p (Some v) t Empty
    else
      (* Split below the common prefix [cp]. *)
      let cp = Prefix.make (Prefix.addr p) cl in
      let leaf = node p (Some v) Empty Empty in
      if goes_right cp (Prefix.addr p) then node cp None t leaf
      else node cp None leaf t

let rec remove p t =
  match t with
  | Empty -> Empty
  | Node n ->
    let np = n.prefix in
    if Prefix.equal p np then collapse np None n.left n.right
    else if Prefix.subsumes np p && Prefix.len np < Prefix.len p then
      if goes_right np (Prefix.addr p) then
        collapse np n.value n.left (remove p n.right)
      else collapse np n.value (remove p n.left) n.right
    else t

let rec find p t =
  match t with
  | Empty -> None
  | Node n ->
    let np = n.prefix in
    if Prefix.equal p np then n.value
    else if Prefix.subsumes np p && Prefix.len np < Prefix.len p then
      find p (if goes_right np (Prefix.addr p) then n.right else n.left)
    else None

let update p f t =
  match f (find p t) with
  | Some v -> add p v t
  | None -> remove p t

let matches a t =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node n ->
      if Prefix.mem a n.prefix then
        let acc =
          match n.value with
          | Some v -> (n.prefix, v) :: acc
          | None -> acc
        in
        if Prefix.len n.prefix = 32 then acc
        else go (if Ipv4.bit a (Prefix.len n.prefix) then n.right else n.left) acc
      else acc
  in
  go t []

let longest_match a t =
  match matches a t with [] -> None | best :: _ -> Some best

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node n ->
    let acc =
      match n.value with Some v -> f n.prefix v acc | None -> acc
    in
    let acc = fold f n.left acc in
    fold f n.right acc

let iter f t = fold (fun p v () -> f p v) t ()

let rec map f t =
  match t with
  | Empty -> Empty
  | Node n ->
    Node
      { prefix = n.prefix;
        value = Option.map f n.value;
        left = map f n.left;
        right = map f n.right
      }

let filter keep t =
  fold (fun p v acc -> if keep p v then add p v acc else acc) t Empty

let covered p t =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node n ->
      if Prefix.subsumes p n.prefix then
        (* Everything below is covered; fold the whole subtree. *)
        List.rev_append (List.rev (fold (fun q v l -> (q, v) :: l) t [])) acc
      else if Prefix.subsumes n.prefix p then
        if Prefix.len n.prefix = 32 then acc
        else
          go (if goes_right n.prefix (Prefix.addr p) then n.right else n.left)
            acc
      else acc
  in
  List.rev (go t [])

let cardinal t = fold (fun _ _ n -> n + 1) t 0
let mem p t = find p t <> None
let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) Empty l
