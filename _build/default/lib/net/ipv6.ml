type t = { hi : int64; lo : int64 }

let make hi lo = { hi; lo }

let groups a =
  let open Int64 in
  [ to_int (logand (shift_right_logical a.hi 48) 0xFFFFL);
    to_int (logand (shift_right_logical a.hi 32) 0xFFFFL);
    to_int (logand (shift_right_logical a.hi 16) 0xFFFFL);
    to_int (logand a.hi 0xFFFFL);
    to_int (logand (shift_right_logical a.lo 48) 0xFFFFL);
    to_int (logand (shift_right_logical a.lo 32) 0xFFFFL);
    to_int (logand (shift_right_logical a.lo 16) 0xFFFFL);
    to_int (logand a.lo 0xFFFFL)
  ]

let of_groups gs =
  match gs with
  | [ a; b; c; d; e; f; g; h ] ->
    let pack w x y z =
      let open Int64 in
      logor
        (logor (shift_left (of_int w) 48) (shift_left (of_int x) 32))
        (logor (shift_left (of_int y) 16) (of_int z))
    in
    { hi = pack a b c d; lo = pack e f g h }
  | _ -> invalid_arg "Ipv6.of_groups"

let parse_group s =
  if s = "" || String.length s > 4 then None
  else
    let ok =
      String.for_all
        (fun c ->
          (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
          || (c >= 'A' && c <= 'F'))
        s
    in
    if ok then Some (int_of_string ("0x" ^ s)) else None

let of_string s =
  (* Split on "::" first; each side is a ':'-separated group list. *)
  let split_groups part =
    if part = "" then Some []
    else
      let pieces = String.split_on_char ':' part in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
          match parse_group p with
          | Some g -> go (g :: acc) rest
          | None -> None)
      in
      go [] pieces
  in
  let double_colon =
    let rec find i =
      if i + 1 >= String.length s then None
      else if s.[i] = ':' && s.[i + 1] = ':' then Some i
      else find (i + 1)
    in
    find 0
  in
  match double_colon with
  | None -> (
    match split_groups s with
    | Some gs when List.length gs = 8 -> Some (of_groups gs)
    | _ -> None)
  | Some i -> (
    let left = String.sub s 0 i in
    let right = String.sub s (i + 2) (String.length s - i - 2) in
    (* a second "::" is illegal *)
    let has_dc t =
      let rec find j =
        j + 1 < String.length t
        && ((t.[j] = ':' && t.[j + 1] = ':') || find (j + 1))
      in
      find 0
    in
    if has_dc right then None
    else
      match (split_groups left, split_groups right) with
      | Some l, Some r when List.length l + List.length r <= 7 ->
        let fill = 8 - List.length l - List.length r in
        Some (of_groups (l @ List.init fill (fun _ -> 0) @ r))
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv6.of_string_exn: %S" s)

let to_string a =
  let gs = Array.of_list (groups a) in
  (* Find the longest run of zero groups (length >= 2, leftmost). *)
  let best_start = ref (-1) and best_len = ref 0 in
  let i = ref 0 in
  while !i < 8 do
    if gs.(!i) = 0 then begin
      let j = ref !i in
      while !j < 8 && gs.(!j) = 0 do
        incr j
      done;
      let len = !j - !i in
      if len >= 2 && len > !best_len then begin
        best_start := !i;
        best_len := len
      end;
      i := !j
    end
    else incr i
  done;
  let buf = Buffer.create 40 in
  if !best_start = -1 then
    Buffer.add_string buf
      (String.concat ":"
         (List.map (Printf.sprintf "%x") (Array.to_list gs)))
  else begin
    for k = 0 to !best_start - 1 do
      if k > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" gs.(k))
    done;
    Buffer.add_string buf "::";
    for k = !best_start + !best_len to 7 do
      if k > !best_start + !best_len then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" gs.(k))
    done
  end;
  Buffer.contents buf

let compare a b =
  match Int64.unsigned_compare a.hi b.hi with
  | 0 -> Int64.unsigned_compare a.lo b.lo
  | c -> c

let equal a b = compare a b = 0

let bit a i =
  if i < 0 || i > 127 then invalid_arg "Ipv6.bit";
  if i < 64 then
    Int64.logand (Int64.shift_right_logical a.hi (63 - i)) 1L = 1L
  else Int64.logand (Int64.shift_right_logical a.lo (127 - i)) 1L = 1L

let add a n =
  let lo = Int64.add a.lo n in
  (* unsigned carry detection *)
  let carry = Int64.unsigned_compare lo a.lo < 0 in
  { hi = (if carry then Int64.add a.hi 1L else a.hi); lo }

let pp ppf a = Format.pp_print_string ppf (to_string a)
