(** Allocation of fixed-length subprefixes out of a supply of parent
    prefixes.

    PEERING owns a /19 and hands each experiment its own /24; this
    module is that allocator, generalised. Allocations are disjoint by
    construction; freeing returns a block to the pool. *)

type t

val create : alloc_len:int -> Prefix.t list -> t
(** [create ~alloc_len supply] is a pool handing out prefixes of length
    [alloc_len] carved from the [supply] prefixes. Raises
    [Invalid_argument] if any supply prefix is longer than
    [alloc_len], or if supply prefixes overlap. *)

val alloc_len : t -> int

val capacity : t -> int
(** Total number of blocks the pool can ever hand out. *)

val available : t -> int
(** Blocks currently free. *)

val allocated : t -> Prefix.t list
(** Currently outstanding blocks, in address order. *)

val alloc : t -> (Prefix.t * t) option
(** [alloc t] hands out the lowest free block, or [None] if exhausted. *)

val free : Prefix.t -> t -> (t, [ `Not_allocated ]) result
(** [free p t] returns [p] to the pool. Fails if [p] is not an
    outstanding allocation of this pool. *)

val add_supply : Prefix.t -> t -> t
(** [add_supply p t] donates an additional parent prefix (researchers
    offered to donate IPv4 prefixes to PEERING's pool, §3). Raises
    [Invalid_argument] on overlap with existing supply. *)

val mem_supply : Prefix.t -> t -> bool
(** [mem_supply p t] is [true] iff [p] is covered by the pool's supply
    (whether or not currently allocated). This is the ownership test
    the safety layer uses. *)
