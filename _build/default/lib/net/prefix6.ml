type t = { addr : Ipv6.t; len : int }

let mask_addr (a : Ipv6.t) len =
  let open Int64 in
  if len <= 0 then Ipv6.make 0L 0L
  else if len >= 128 then a
  else if len <= 64 then
    let keep = if len = 64 then minus_one else shift_left minus_one (64 - len) in
    Ipv6.make (logand (a : Ipv6.t).Ipv6.hi keep) 0L
  else
    let keep = shift_left minus_one (128 - len) in
    Ipv6.make a.Ipv6.hi (logand a.Ipv6.lo keep)

let make addr len =
  if len < 0 || len > 128 then invalid_arg "Prefix6.make";
  { addr = mask_addr addr len; len }

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 128) (Ipv6.of_string s)
  | Some i -> (
    let addr_s = String.sub s 0 i in
    let len_s = String.sub s (i + 1) (String.length s - i - 1) in
    match (Ipv6.of_string addr_s, int_of_string_opt len_s) with
    | Some a, Some l when l >= 0 && l <= 128 -> Some (make a l)
    | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix6.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv6.to_string p.addr) p.len
let addr p = p.addr
let len p = p.len

let mem a p = Ipv6.equal (mask_addr a p.len) p.addr
let subsumes p q = p.len <= q.len && mem q.addr p

let nth_subprefix p l i =
  if l < p.len || l > 128 then invalid_arg "Prefix6.nth_subprefix";
  if l > 126 then invalid_arg "Prefix6.nth_subprefix: block too small";
  (* offset the address by i steps of 2^(128-l); only the low-64 part
     of the step is supported, which covers any l >= 66; for shorter
     allocation lengths we shift within hi directly. *)
  if l <= 64 then
    let step_hi = Int64.shift_left 1L (64 - l) in
    let hi = Int64.add p.addr.Ipv6.hi (Int64.mul (Int64.of_int i) step_hi) in
    make (Ipv6.make hi p.addr.Ipv6.lo) l
  else
    let step = Int64.shift_left 1L (128 - l) in
    make (Ipv6.add p.addr (Int64.mul (Int64.of_int i) step)) l

let compare p q =
  match Ipv6.compare p.addr q.addr with
  | 0 -> Int.compare p.len q.len
  | c -> c

let equal p q = compare p q = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)

module Pool = struct
  type nonrec prefix = t

  type pool = {
    supply : prefix;
    alloc_len : int;
    mutable cursor : int;
    mutable freed : Set.t;
    mutable used : Set.t;
  }

  let create ~alloc_len supply =
    if alloc_len < supply.len || alloc_len > 126 then
      invalid_arg "Prefix6.Pool.create";
    { supply; alloc_len; cursor = 0; freed = Set.empty; used = Set.empty }

  let capacity_bits pool = pool.alloc_len - pool.supply.len

  let alloc pool =
    match Set.min_elt_opt pool.freed with
    | Some p ->
      pool.freed <- Set.remove p pool.freed;
      pool.used <- Set.add p pool.used;
      Some (p, pool)
    | None ->
      let bits = capacity_bits pool in
      if bits < 62 && pool.cursor >= 1 lsl bits then None
      else begin
        let p = nth_subprefix pool.supply pool.alloc_len pool.cursor in
        pool.cursor <- pool.cursor + 1;
        pool.used <- Set.add p pool.used;
        Some (p, pool)
      end

  let free p pool =
    if Set.mem p pool.used then begin
      pool.used <- Set.remove p pool.used;
      pool.freed <- Set.add p pool.freed;
      Ok pool
    end
    else Error `Not_allocated

  let allocated pool = Set.elements pool.used
  let mem_supply p pool = subsumes pool.supply p
end
