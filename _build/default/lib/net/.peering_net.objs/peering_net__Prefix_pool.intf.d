lib/net/prefix_pool.mli: Prefix
