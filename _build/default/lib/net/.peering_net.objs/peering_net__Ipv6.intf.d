lib/net/ipv6.mli: Format
