lib/net/ipv6.ml: Array Buffer Format Int64 List Printf String
