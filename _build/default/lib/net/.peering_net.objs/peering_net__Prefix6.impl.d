lib/net/prefix6.ml: Format Int Int64 Ipv6 Option Printf Set String
