lib/net/country.mli: Format Set
