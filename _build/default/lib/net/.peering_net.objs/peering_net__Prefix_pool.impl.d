lib/net/prefix_pool.ml: List Prefix
