lib/net/ipv4.ml: Char Format Int List Printf String
