lib/net/prefix.ml: Format Int Ipv4 List Map Option Printf Set String
