lib/net/country.ml: Format Printf Set String
