lib/net/prefix6.mli: Format Ipv6 Set
