type t = int

let mask32 = 0xFFFFFFFF

let of_int n = n land mask32
let to_int a = a

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string s =
  (* Hand-rolled parse: exactly four decimal octets separated by dots,
     no leading/trailing garbage, each in [0, 255]. *)
  let len = String.length s in
  let rec octet i acc ndigits =
    if i >= len then (i, acc, ndigits)
    else
      match s.[i] with
      | '0' .. '9' when ndigits < 3 ->
        octet (i + 1) ((acc * 10) + Char.code s.[i] - Char.code '0') (ndigits + 1)
      | _ -> (i, acc, ndigits)
  in
  let rec go i parts count =
    let j, v, nd = octet i 0 0 in
    if nd = 0 || v > 255 then None
    else
      let parts = (v :: parts) and count = count + 1 in
      if count = 4 then if j = len then Some (List.rev parts) else None
      else if j < len && s.[j] = '.' then go (j + 1) parts count
      else None
  in
  match go 0 [] 0 with
  | Some [ a; b; c; d ] -> Some (of_octets a b c d)
  | Some _ | None -> None

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let compare = Int.compare
let equal = Int.equal
let succ a = (a + 1) land mask32
let add a n = (a + n) land mask32

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit";
  (a lsr (31 - i)) land 1 = 1

let pp ppf a = Format.pp_print_string ppf (to_string a)
