(** IPv4 CIDR prefixes.

    A prefix is an address plus a length in [0, 32]. Construction
    normalises the address by zeroing host bits, so structural equality
    coincides with semantic equality. *)

type t = private { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len] with host bits cleared.
    Raises [Invalid_argument] unless [0 <= len <= 32]. *)

val of_string : string -> t option
(** [of_string "a.b.c.d/len"] parses CIDR notation. A bare address is
    accepted as a /32. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on failure. *)

val to_string : t -> string

val addr : t -> Ipv4.t
val len : t -> int

val network_mask : int -> int
(** [network_mask len] is the 32-bit netmask for a prefix of length
    [len], as an integer. *)

val mem : Ipv4.t -> t -> bool
(** [mem a p] is [true] iff address [a] falls inside prefix [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is [true] iff [p] contains [q] (i.e. [q] is equal to
    or more specific than [p]). *)

val overlaps : t -> t -> bool
(** [overlaps p q] is [true] iff the address ranges intersect. *)

val first : t -> Ipv4.t
(** First (network) address covered. *)

val last : t -> Ipv4.t
(** Last (broadcast) address covered. *)

val size : t -> int
(** Number of addresses covered: [2^(32-len)]. *)

val split : t -> (t * t) option
(** [split p] divides [p] into its two halves of length [len p + 1].
    [None] if [p] is a /32. *)

val subprefixes : t -> int -> t list
(** [subprefixes p l] enumerates all subprefixes of [p] of length [l],
    in address order. Raises [Invalid_argument] if [l < len p] or
    [l > 32]. The list has [2^(l - len p)] elements; callers are
    expected to keep the delta small. *)

val nth_subprefix : t -> int -> int -> t
(** [nth_subprefix p l i] is the [i]-th (0-based, in address order)
    subprefix of [p] with length [l], without materialising the list. *)

val compare : t -> t -> int
(** Order by address, then by length (shorter first). *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
