(** Country codes, used to reproduce the paper's "peers based in 59
    countries" statistic (§4.1). *)

type t = private string
(** An ISO 3166-1 alpha-2 code, uppercase. *)

val of_string : string -> t option
(** Accepts any two-letter code (case-insensitive); [None] otherwise. *)

val of_string_exn : string -> t
val to_string : t -> string

val nl : t
(** The Netherlands — AMS-IX's home, the modal peer country. *)

val pool : t array
(** A fixed pool of 96 distinct country codes used by the synthetic
    IXP-member generator. Index 0 is [nl]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
