type t = {
  alloc_len : int;
  supply : Prefix.t list; (* parents, address order *)
  free : Prefix.Set.t;
  used : Prefix.Set.t;
}

let check_supply supply =
  let rec disjoint = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> (not (Prefix.overlaps a b)) && disjoint rest
  in
  disjoint (List.sort Prefix.compare supply)

let blocks_of alloc_len p = Prefix.subprefixes p alloc_len

let create ~alloc_len supply =
  if alloc_len < 0 || alloc_len > 32 then invalid_arg "Prefix_pool.create";
  List.iter
    (fun p ->
      if Prefix.len p > alloc_len then
        invalid_arg "Prefix_pool.create: supply prefix longer than alloc_len")
    supply;
  if not (check_supply supply) then
    invalid_arg "Prefix_pool.create: overlapping supply";
  let free =
    List.fold_left
      (fun acc p ->
        List.fold_left (fun acc b -> Prefix.Set.add b acc) acc
          (blocks_of alloc_len p))
      Prefix.Set.empty supply
  in
  { alloc_len; supply = List.sort Prefix.compare supply; free;
    used = Prefix.Set.empty }

let alloc_len t = t.alloc_len
let capacity t = Prefix.Set.cardinal t.free + Prefix.Set.cardinal t.used
let available t = Prefix.Set.cardinal t.free
let allocated t = Prefix.Set.elements t.used

let alloc t =
  match Prefix.Set.min_elt_opt t.free with
  | None -> None
  | Some p ->
    Some
      ( p,
        { t with
          free = Prefix.Set.remove p t.free;
          used = Prefix.Set.add p t.used
        } )

let free p t =
  if Prefix.Set.mem p t.used then
    Ok
      { t with
        used = Prefix.Set.remove p t.used;
        free = Prefix.Set.add p t.free
      }
  else Error `Not_allocated

let mem_supply p t = List.exists (fun s -> Prefix.subsumes s p) t.supply

let add_supply p t =
  if Prefix.len p > t.alloc_len then
    invalid_arg "Prefix_pool.add_supply: prefix longer than alloc_len";
  if List.exists (fun s -> Prefix.overlaps s p) t.supply then
    invalid_arg "Prefix_pool.add_supply: overlaps existing supply";
  let free =
    List.fold_left
      (fun acc b -> Prefix.Set.add b acc)
      t.free (blocks_of t.alloc_len p)
  in
  { t with supply = List.sort Prefix.compare (p :: t.supply); free }
