open Peering_net
open Peering_bgp

let measured_words rib = Obj.reachable_words (Obj.repr rib)
let measured_bytes rib = measured_words rib * (Sys.word_size / 8)

type model_params = {
  base_bytes : int;
  node_bytes : int;
  path_bytes : int;
  attr_bytes : int;
}

let quagga_params =
  { base_bytes = 6 * 1024 * 1024;
    node_bytes = 96;
    path_bytes = 136;
    attr_bytes = 72
  }

let model_bytes ?(params = quagga_params) ~peers ~prefixes_per_peer () =
  params.base_bytes
  + (prefixes_per_peer * params.node_bytes)
  + (peers * prefixes_per_peer * (params.path_bytes + params.attr_bytes))

let fill_rib ~peers ~prefixes_per_peer =
  let rib = Rib.create () in
  (* Carve prefixes from 80.0.0.0/4: room for 1M /24s. *)
  let region = Prefix.of_string_exn "80.0.0.0/4" in
  for peer = 1 to peers do
    let peer_addr = Ipv4.of_octets 10 0 (peer lsr 8) (peer land 0xFF) in
    let source =
      { Route.peer_asn = Asn.of_int (64000 + peer);
        peer_addr;
        peer_router_id = peer_addr;
        ebgp = true
      }
    in
    let key = Ipv4.to_string peer_addr in
    for i = 0 to prefixes_per_peer - 1 do
      let prefix = Prefix.nth_subprefix region 24 i in
      let attrs =
        Attrs.make
          ~as_path:
            (As_path.of_asns
               [ Asn.of_int (64000 + peer); Asn.of_int (3356 + (i mod 11)) ])
          ~next_hop:peer_addr ()
      in
      ignore (Rib.announce rib ~peer:key (Route.make ~source prefix attrs))
    done
  done;
  rib
