lib/router/memory.ml: As_path Asn Attrs Ipv4 Obj Peering_bgp Peering_net Prefix Rib Route Sys
