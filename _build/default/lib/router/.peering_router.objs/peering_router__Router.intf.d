lib/router/router.mli: Asn Community Ipv4 Peering_bgp Peering_net Peering_sim Policy Prefix Rib Route Session
