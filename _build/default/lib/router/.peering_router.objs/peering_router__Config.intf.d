lib/router/config.mli: Asn Ipv4 Peering_bgp Peering_net Peering_sim Policy Prefix Router
