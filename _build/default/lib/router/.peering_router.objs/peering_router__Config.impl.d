lib/router/config.ml: Asn Community Hashtbl Int Ipv4 List Option Peering_bgp Peering_net Policy Prefix Printf Router String
