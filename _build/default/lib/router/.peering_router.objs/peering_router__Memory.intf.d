lib/router/memory.mli: Peering_bgp Rib
