lib/router/router.ml: As_path Asn Attrs Community Fsm Ipv4 List Message Option Peering_bgp Peering_net Peering_sim Policy Prefix Rib Route Session Update_group Wire
