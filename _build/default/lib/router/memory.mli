(** BGP table memory accounting, for reproducing Figure 2 ("BGP table
    memory usage as # of prefixes and peers increases").

    Two views are provided:

    - {!measured_words}/{!measured_bytes} walk our actual OCaml RIB
      with [Obj.reachable_words] — the honest cost of {e this}
      implementation;
    - {!model_bytes} is an analytic model calibrated to Quagga's
      data structures (struct [bgp_node] per prefix, struct
      [bgp_info] per path, partially shared [attr]s), which is what
      the paper measured.

    Both are linear in prefixes with a per-peer slope, which is the
    figure's shape. *)

open Peering_bgp

val measured_words : Rib.t -> int
(** Heap words reachable from the RIB. *)

val measured_bytes : Rib.t -> int
(** [measured_words * Sys.word_size / 8]. *)

type model_params = {
  base_bytes : int;  (** process baseline, default 6 MiB *)
  node_bytes : int;  (** per distinct prefix, default 96 *)
  path_bytes : int;  (** per (prefix, peer) path, default 136 *)
  attr_bytes : int;  (** per path share of attribute storage, default 72 *)
}

val quagga_params : model_params

val model_bytes :
  ?params:model_params -> peers:int -> prefixes_per_peer:int -> unit -> int
(** Modelled resident bytes for a router holding full feeds of
    [prefixes_per_peer] routes from each of [peers] peers (all peers
    advertising the same prefix set, as in the Fig. 2 experiment). *)

val fill_rib : peers:int -> prefixes_per_peer:int -> Rib.t
(** Build a RIB in the Fig. 2 configuration: [peers] synthetic peers
    each announcing the same [prefixes_per_peer] prefixes with
    distinct next hops. *)
