(** A Quagga-flavoured configuration language.

    PEERING ships clients a bgpd configuration; this module parses the
    dialect we support and instantiates routers from it. Supported
    statements (one per line, two-space indentation optional, [!] and
    [#] start comments):

    {v
router bgp <asn>
 bgp router-id <ip>
 network <prefix>
 neighbor <ip> remote-as <asn>
 neighbor <ip> route-map <name> in|out
ip prefix-list <name> seq <n> permit|deny <prefix> [ge <n>] [le <n>]
route-map <name> permit|deny <seq>
 match ip address prefix-list <name>
 match community <asn>:<value>
 match as-path-contains <asn>
 set local-preference <n>
 set metric <n>
 set community <asn>:<value>
 set as-path prepend <asn> <count>
 set next-hop <ip>
    v} *)

open Peering_net
open Peering_bgp

type neighbor_config = {
  addr : Ipv4.t;
  remote_as : Asn.t;
  route_map_in : string option;
  route_map_out : string option;
}

type bgp_config = {
  asn : Asn.t;
  router_id : Ipv4.t option;
  networks : Prefix.t list;
  neighbors : neighbor_config list;
}

type t

val parse : string -> (t, string) result
(** Parse a configuration text. The error includes a line number. *)

val parse_exn : string -> t

val bgp : t -> bgp_config option

val route_map_names : t -> string list

val compile_route_map : t -> string -> (Policy.t, string) result
(** Compile the named route-map (resolving prefix-list references)
    into a {!Peering_bgp.Policy.t}. An undefined route-map or a
    reference to an undefined prefix-list is an error. *)

val instantiate :
  Peering_sim.Engine.t -> t -> (Router.t, string) result
(** Build a router from the [router bgp] block: creates the router and
    originates its networks. Neighbor sessions are wired separately
    with {!Router.connect}; the per-neighbor route-maps named in the
    config are applied to the router after connection with
    {!apply_neighbor_policies}. *)

val apply_neighbor_policies : t -> Router.t -> (unit, string) result
(** For each configured neighbor with route-maps, set the compiled
    import/export policies on the (already connected) router. *)
