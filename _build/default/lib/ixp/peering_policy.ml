type t = Open | Selective | Case_by_case | Closed | Unlisted

let to_string = function
  | Open -> "open"
  | Selective -> "selective"
  | Case_by_case -> "case-by-case"
  | Closed -> "closed"
  | Unlisted -> "unlisted"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b
let all = [ Open; Selective; Case_by_case; Closed; Unlisted ]

let accept_probability = function
  | Open -> 0.88
  | Selective -> 0.15
  | Case_by_case -> 0.25
  | Closed -> 0.0
  | Unlisted -> 0.1
