(** Published peering policies of IXP members.

    §4.1 censuses AMS-IX members not on the route server: 48 open, 12
    closed, 40 case-by-case, 15 unlisted. *)

type t =
  | Open  (** peers with anyone who asks *)
  | Selective  (** peers subject to requirements (ratios, volume) *)
  | Case_by_case
  | Closed
  | Unlisted  (** no published policy *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val all : t list

val accept_probability : t -> float
(** Probability the member accepts an unsolicited peering request from
    a small, traffic-less AS such as PEERING. Calibrated to the
    paper's §4.1 narrative: open members overwhelmingly accept (the
    "vast majority"); others rarely do. *)
