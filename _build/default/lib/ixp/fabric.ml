open Peering_net
module Rng = Peering_sim.Rng

type response = Accepted | Declined | No_response | Replied_with_questions

let response_to_string = function
  | Accepted -> "accepted"
  | Declined -> "declined"
  | No_response -> "no response"
  | Replied_with_questions -> "replied with questions"

type member = {
  asn : Asn.t;
  policy : Peering_policy.t;
  uses_route_server : bool;
}

type t = {
  name : string;
  country : Country.t;
  rng : Rng.t;
  rs : Route_server.t;
  mutable directory : member Asn.Map.t;
  mutable responses : response Asn.Map.t;
}

let create ~name ~country ~rng () =
  { name;
    country;
    rng;
    rs = Route_server.create ();
    directory = Asn.Map.empty;
    responses = Asn.Map.empty
  }

let name t = t.name
let country t = t.country
let route_server t = t.rs

let add_member t ?(uses_route_server = false) ~policy asn =
  if Asn.Map.mem asn t.directory then
    invalid_arg "Fabric.add_member: duplicate member";
  t.directory <- Asn.Map.add asn { asn; policy; uses_route_server } t.directory;
  if uses_route_server then Route_server.connect t.rs asn

let member t asn = Asn.Map.find_opt asn t.directory
let members t = List.map snd (Asn.Map.bindings t.directory)
let n_members t = Asn.Map.cardinal t.directory

let route_server_users t =
  Asn.Map.fold
    (fun asn m acc -> if m.uses_route_server then asn :: acc else acc)
    t.directory []
  |> List.rev

let non_route_server_members t =
  List.filter (fun m -> not m.uses_route_server) (members t)

let policy_census t =
  let nonrs = non_route_server_members t in
  List.map
    (fun p ->
      ( p,
        List.length
          (List.filter (fun m -> Peering_policy.equal m.policy p) nonrs) ))
    Peering_policy.all

let request_peering t ~target =
  match member t target with
  | None -> invalid_arg "Fabric.request_peering: not a member"
  | Some m -> (
    match Asn.Map.find_opt target t.responses with
    | Some r -> r
    | None ->
      let p_accept = Peering_policy.accept_probability m.policy in
      let r =
        if Rng.bernoulli t.rng p_accept then Accepted
        else if
          Peering_policy.equal m.policy Peering_policy.Closed
          || Rng.bernoulli t.rng 0.5
        then No_response
        else if Rng.bernoulli t.rng 0.2 then Replied_with_questions
        else Declined
      in
      t.responses <- Asn.Map.add target r t.responses;
      r)

let bilateral_peers t =
  Asn.Map.fold
    (fun asn r acc -> if r = Accepted then asn :: acc else acc)
    t.responses []
  |> List.rev
