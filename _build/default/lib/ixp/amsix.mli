(** A calibrated AMS-IX instance.

    Builds a {!Fabric.t} whose member population matches the §4.1
    census: 669 member ASes, 554 of them on the route servers; of the
    115 others, 48 open / 12 closed / 40 case-by-case / 15 unlisted
    (the paper's footnote also counts 40 "selective"-ish
    case-by-case members — we map its "consider on a case-by-case
    basis" to [Case_by_case]). Members are drawn from a generated
    Internet with the biases that make the rest of §4.1 come out:
    content networks and large-cone transit ASes join IXPs at much
    higher rates than stubs. *)

open Peering_net

type calibration = {
  n_members : int;  (** 669 *)
  n_route_server : int;  (** 554 *)
  n_open : int;  (** 48 *)
  n_closed : int;  (** 12 *)
  n_case_by_case : int;  (** 40 *)
  n_unlisted : int;  (** 15 *)
}

val paper_calibration : calibration

val build :
  ?calibration:calibration ->
  rng:Peering_sim.Rng.t ->
  Peering_topo.Gen.world ->
  Fabric.t
(** Select members from the world and populate the fabric. The
    selection prefers (in order): content networks, the top of the
    customer-cone ranking, large transit, small transit, stubs.
    Raises [Invalid_argument] if the world has fewer ASes than
    [n_members]. *)

val top_rank_members : Fabric.t -> Peering_topo.Gen.world -> int -> Asn.t list
(** Members that are among the [n] largest ASes by customer cone. *)

val member_countries : Fabric.t -> Peering_topo.Gen.world -> Country.Set.t
(** Distinct countries of all members. *)
