(** An IXP route server: a central point for multilateral peering.

    Members announce routes to the server; the server redistributes
    them to every other connected member {e transparently} — it does
    not insert its own ASN into the path. Members steer redistribution
    with the conventional route-server communities:

    - [0:target] — do not announce this route to [target];
    - [0:0] — do not announce to anyone (combine with [rs_asn:target]
      to whitelist);
    - [rs_asn:target] — do announce to [target] (overrides [0:0]).

    Connecting to the server is how PEERING "instantly obtained
    peering with hundreds of ASes" (§4.1). *)

open Peering_net
open Peering_bgp

type t

val create : ?asn:Asn.t -> unit -> t
(** [asn] is the server's own AS number, used in whitelist communities
    (default 6777 — AMS-IX's). *)

val asn : t -> Asn.t

val connect : t -> Asn.t -> unit
(** Attach a member. Idempotent. *)

val disconnect : t -> Asn.t -> (Asn.t * Prefix.t) list
(** Detach a member; returns the withdrawals the server sends to the
    other members ([(to_member, prefix)]). *)

val members : t -> Asn.t list
val n_members : t -> int

val announce : t -> from:Asn.t -> Route.t -> (Asn.t * Route.t) list
(** Redistribute a member's announcement; returns the deliveries the
    server performs ([(to_member, route)]), after community-based
    export control. The route-server control communities themselves are
    scrubbed from redistributed routes. Raises [Invalid_argument] if
    [from] is not connected. *)

val withdraw : t -> from:Asn.t -> Prefix.t -> (Asn.t * Prefix.t) list
(** Withdraw a member's route; returns the withdrawals delivered to
    members that had received it. *)

val routes_for : t -> Asn.t -> Route.t list
(** Routes the member currently holds from the server. *)

val route_count : t -> int
(** Total routes retained across all member tables. *)
