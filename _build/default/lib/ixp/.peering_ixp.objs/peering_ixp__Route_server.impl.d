lib/ixp/route_server.ml: Asn Attrs Community Hashtbl Int List Map Peering_bgp Peering_net Prefix Route
