lib/ixp/amsix.ml: Array Asn Country Fabric Hashtbl List Peering_net Peering_policy Peering_sim Peering_topo
