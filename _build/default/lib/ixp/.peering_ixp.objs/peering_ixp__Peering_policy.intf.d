lib/ixp/peering_policy.mli: Format
