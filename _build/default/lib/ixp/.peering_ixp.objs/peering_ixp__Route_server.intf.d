lib/ixp/route_server.mli: Asn Peering_bgp Peering_net Prefix Route
