lib/ixp/peering_policy.ml: Format
