lib/ixp/amsix.mli: Asn Country Fabric Peering_net Peering_sim Peering_topo
