lib/ixp/fabric.mli: Asn Country Peering_net Peering_policy Peering_sim Route_server
