lib/ixp/fabric.ml: Asn Country List Peering_net Peering_policy Peering_sim Route_server
