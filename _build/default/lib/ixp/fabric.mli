(** An Internet exchange point: a member directory over a shared L2
    fabric, an optional route server, and the social workflow of
    bilateral peering requests. *)

open Peering_net

type response =
  | Accepted
  | Declined
  | No_response
  | Replied_with_questions
      (** the member answered asking why a traffic-less AS wants to
          peer — §4.1 reports exactly one of these *)

val response_to_string : response -> string

type member = {
  asn : Asn.t;
  policy : Peering_policy.t;
  uses_route_server : bool;
}

type t

val create :
  name:string -> country:Country.t -> rng:Peering_sim.Rng.t -> unit -> t
(** The fabric starts with a route server (AS 6777 convention) and no
    members. *)

val name : t -> string
val country : t -> Country.t
val route_server : t -> Route_server.t

val add_member :
  t -> ?uses_route_server:bool -> policy:Peering_policy.t -> Asn.t -> unit
(** Register a member; joins the route server when
    [uses_route_server] (default false). Duplicate ASNs raise
    [Invalid_argument]. *)

val member : t -> Asn.t -> member option
val members : t -> member list
val n_members : t -> int

val route_server_users : t -> Asn.t list
(** Members connected to the route server, ascending. *)

val non_route_server_members : t -> member list

val policy_census : t -> (Peering_policy.t * int) list
(** Count of non-route-server members per published policy, in
    {!Peering_policy.all} order. *)

val request_peering : t -> target:Asn.t -> response
(** Simulate sending a bilateral peering request to [target]. The
    outcome is drawn from the member's policy
    ({!Peering_policy.accept_probability}); a member that already
    answered keeps giving the same answer (deterministic per member).
    Raises [Invalid_argument] for non-members. *)

val bilateral_peers : t -> Asn.t list
(** Members that have accepted a bilateral request so far. *)
