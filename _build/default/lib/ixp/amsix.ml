open Peering_net
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen
module Customer_cone = Peering_topo.Customer_cone
module As_graph = Peering_topo.As_graph

type calibration = {
  n_members : int;
  n_route_server : int;
  n_open : int;
  n_closed : int;
  n_case_by_case : int;
  n_unlisted : int;
}

let paper_calibration =
  { n_members = 669;
    n_route_server = 554;
    n_open = 48;
    n_closed = 12;
    n_case_by_case = 40;
    n_unlisted = 15
  }

let build ?(calibration = paper_calibration) ~rng (world : Gen.world) =
  let cal = calibration in
  if As_graph.n_ases world.graph < cal.n_members then
    invalid_arg "Amsix.build: world too small";
  let fabric =
    Fabric.create ~name:"AMS-IX" ~country:Country.nl ~rng:(Rng.split rng) ()
  in
  (* Candidate selection with kind-dependent join probability. The top
     of the cone ranking gets an extra boost so "we peer with 13 of
     the top 50" holds. *)
  let top_ranked = Customer_cone.top world.graph 100 in
  let top20 =
    Asn.Set.of_list (List.filteri (fun i _ -> i < 20) top_ranked)
  in
  let top100 = Asn.Set.of_list top_ranked in
  (* The big CDNs (the Googles and Akamais of the world) peer at every
     major IXP; popularity in the web workload follows the content
     list's order, so the head of that list joins near-certainly. *)
  let content_rank = Hashtbl.create 64 in
  List.iteri
    (fun i a -> Hashtbl.replace content_rank (Asn.to_int a) i)
    world.content;
  let n_content = List.length world.content in
  let join_probability asn =
    let node = As_graph.node_exn world.graph asn in
    match node.kind with
    | As_graph.Content -> (
      match Hashtbl.find_opt content_rank (Asn.to_int asn) with
      | Some i when i < n_content / 5 -> 0.85
      | Some _ | None -> 0.4)
    | As_graph.Tier1 -> 0.0 (* tier-1s sell transit; they do not open-peer *)
    | As_graph.Large_transit ->
      (* the hypergiants famously peer with everyone *)
      if Asn.Set.mem asn top20 then 0.85
      else if Asn.Set.mem asn top100 then 0.25
      else 0.12
    | As_graph.Small_transit -> 0.04
    | As_graph.Stub | As_graph.Enterprise -> 0.003
  in
  (* Visit candidates in shuffled order so the membership cap does not
     bias against ASes generated late (content networks). *)
  let candidates = Array.of_list (As_graph.ases world.graph) in
  Rng.shuffle rng candidates;
  let selected = ref [] in
  let n_selected = ref 0 in
  Array.iter
    (fun asn ->
      if !n_selected < cal.n_members && Rng.bernoulli rng (join_probability asn)
      then begin
        selected := asn :: !selected;
        incr n_selected
      end)
    candidates;
  (* Top up from small transits and stubs if the draw fell short —
     in random order, so the fill does not favour the head of the
     lists (which hold the largest cones). *)
  let already = Asn.Set.of_list !selected in
  let fill_arr =
    Array.of_list
      (List.filter
         (fun a -> not (Asn.Set.mem a already))
         (world.small_transit @ world.stubs))
  in
  Rng.shuffle rng fill_arr;
  let fill = Array.to_list fill_arr in
  let rec top_up = function
    | [] -> ()
    | a :: rest ->
      if !n_selected < cal.n_members then begin
        selected := a :: !selected;
        incr n_selected;
        top_up rest
      end
  in
  top_up fill;
  let members = Array.of_list !selected in
  Rng.shuffle rng members;
  (* First [n_route_server] use the route server; the rest get the
     published-policy census. *)
  let policies =
    Array.concat
      [ Array.make cal.n_open Peering_policy.Open;
        Array.make cal.n_closed Peering_policy.Closed;
        Array.make cal.n_case_by_case Peering_policy.Case_by_case;
        Array.make cal.n_unlisted Peering_policy.Unlisted
      ]
  in
  Rng.shuffle rng policies;
  Array.iteri
    (fun i asn ->
      if i < cal.n_route_server then
        (* Policy of RS members is irrelevant to the census; most open. *)
        Fabric.add_member fabric ~uses_route_server:true
          ~policy:Peering_policy.Open asn
      else
        let p = policies.(i - cal.n_route_server) in
        Fabric.add_member fabric ~policy:p asn)
    members;
  fabric

let top_rank_members fabric (world : Gen.world) n =
  let topn = Asn.Set.of_list (Customer_cone.top world.graph n) in
  List.filter_map
    (fun (m : Fabric.member) ->
      if Asn.Set.mem m.asn topn then Some m.asn else None)
    (Fabric.members fabric)

let member_countries fabric (world : Gen.world) =
  List.fold_left
    (fun acc (m : Fabric.member) ->
      Country.Set.add (As_graph.node_exn world.graph m.asn).country acc)
    Country.Set.empty (Fabric.members fabric)
