(** BGP communities (RFC 1997).

    A community is a 32-bit value conventionally written
    ["asn:value"]. PEERING uses communities as its client-facing
    control knob: clients tag announcements to select which peers the
    mux exports them to. *)

open Peering_net

type t = private int
(** 32-bit community value. *)

val make : int -> int -> t
(** [make asn value] is the community [asn:value]; both halves are
    16-bit. Raises [Invalid_argument] out of range. *)

val of_int32 : int -> t
(** Raw 32-bit constructor (masked). *)

val to_int32 : t -> int

val asn_part : t -> int
val value_part : t -> int

val no_export : t
(** 0xFFFFFF01: do not export beyond the neighboring AS. *)

val no_advertise : t
(** 0xFFFFFF02: do not advertise to any peer. *)

val no_export_subconfed : t
(** 0xFFFFFF03. *)

val is_well_known : t -> bool

val of_string : string -> t option
(** Parses ["asn:value"]. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val mem : t -> t list -> bool
val add : t -> t list -> t list
(** Set-like insert preserving sorted order, no duplicates. *)

val remove : t -> t list -> t list

val matching_asn : Asn.t -> t list -> t list
(** Communities whose ASN half equals the given ASN (used by the mux
    to find PEERING-scoped control communities). *)
