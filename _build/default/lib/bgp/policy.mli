(** Route policies (route-maps): ordered permit/deny entries with match
    conditions and set actions.

    These express both the simulated Internet's import/export policies
    and the PEERING safety filters ("outbound filters on prefixes and
    origin AS", paper §3). *)

open Peering_net

type cond =
  | Prefix_in of (Prefix.t * int * int) list
      (** prefix-list: [(p, ge, le)] matches routes whose prefix is
          inside [p] with length in [ge, le] *)
  | Prefix_exact of Prefix.t list
  | Path_contains of Asn.t
  | Originated_by of Asn.t
  | Neighbor_is of Asn.t
  | Has_community of Community.t
  | Path_length_le of int
  | Has_private_asn  (** any private ASN anywhere in the path *)
  | Not of cond
  | All of cond list
  | Any of cond list

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Community.t
  | Del_community of Community.t
  | Clear_communities
  | Prepend of Asn.t * int
  | Set_next_hop of Ipv4.t
  | Strip_private_asns

type decision = Permit | Deny

type entry = {
  seq : int;
  decision : decision;
  conds : cond list;  (** all must hold (empty list matches anything) *)
  actions : action list;  (** applied on permit *)
}

type t
(** A route-map: entries evaluated in [seq] order; first matching entry
    decides. A route matching no entry is denied (BGP convention). *)

val empty : t
(** Denies everything. *)

val permit_all : t
(** A single catch-all permit. *)

val of_entries : entry list -> t
(** Entries are sorted by [seq]; duplicate sequence numbers raise
    [Invalid_argument]. *)

val entries : t -> entry list

val add : entry -> t -> t

val eval_cond : cond -> Route.t -> bool

val apply : t -> Route.t -> Route.t option
(** [apply t r] is [Some r'] if some entry permits [r] ([r'] includes
    that entry's actions), [None] if denied. *)

val chain : t list -> Route.t -> Route.t option
(** Apply maps in order, stopping at the first denial. *)
