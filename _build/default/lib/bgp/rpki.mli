(** RPKI route-origin validation (RFC 6811).

    The paper's motivating example for rich connectivity is a study of
    secure-BGP adoption ("a researcher recently submitted a proposal
    to use PEERING announcements to assess adoption. BGP security
    depends on where announcements propagate...", §2). This module is
    the validation substrate: a table of Route Origin Authorizations
    and the Valid / Invalid / NotFound test ASes apply when they
    enforce ROV. *)

open Peering_net

type roa = {
  prefix : Prefix.t;
  max_length : int;  (** longest announcement the ROA authorises *)
  origin : Asn.t;
}

type validity =
  | Valid
  | Invalid  (** covered by ROAs, none of which authorises it *)
  | Not_found  (** no covering ROA *)

val validity_to_string : validity -> string

type t

val empty : t

val add_roa : t -> ?max_length:int -> prefix:Prefix.t -> Asn.t -> t
(** Register a ROA; [max_length] defaults to the prefix's own length
    (the recommended practice). Raises [Invalid_argument] if
    [max_length] is shorter than the prefix or longer than 32. *)

val roa_count : t -> int

val covering : t -> Prefix.t -> roa list
(** All ROAs whose prefix covers the announcement. *)

val validate : t -> prefix:Prefix.t -> origin:Asn.t option -> validity
(** RFC 6811: [Valid] if some covering ROA matches the origin and the
    announced length is within [max_length]; [Invalid] if covering
    ROAs exist but none matches; [Not_found] otherwise. [origin =
    None] (an AS_SET origin) is never [Valid]. *)

val validate_route : t -> Route.t -> validity
(** Validate a route by its prefix and AS-path origin. *)
