(** A route: a prefix with its path attributes and bookkeeping about
    where it was learned. *)

open Peering_net

type source = {
  peer_asn : Asn.t;
  peer_addr : Ipv4.t;
  peer_router_id : Ipv4.t;
  ebgp : bool;  (** learned over eBGP (vs iBGP) *)
}

type t = {
  prefix : Prefix.t;
  attrs : Attrs.t;
  source : source option;  (** [None] for locally originated routes *)
  path_id : int;  (** ADD-PATH identifier; 0 when unused *)
  learned_at : float;  (** virtual time of installation *)
}

val make :
  ?source:source -> ?path_id:int -> ?learned_at:float ->
  Prefix.t -> Attrs.t -> t

val local : Prefix.t -> Attrs.t -> t
(** Locally originated route (no source). *)

val origin_asn : t -> Asn.t option
(** Originating AS per the AS path. *)

val is_ebgp : t -> bool
(** [true] for eBGP-learned routes; locally originated routes count as
    not-eBGP. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
