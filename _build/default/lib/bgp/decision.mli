(** The BGP best-path decision process (RFC 4271 §9.1.2.2 with the
    standard vendor tie-breakers).

    A key point of the PEERING architecture is that its servers do
    {e not} run this process on behalf of clients — each client sees
    every peer's route and decides for itself (paper §3). Clients,
    emulated routers, and the simulated Internet's ASes all use this
    module. *)

val default_local_pref : int
(** 100 — applied when LOCAL_PREF is absent. *)

val compare : Route.t -> Route.t -> int
(** [compare a b < 0] iff [a] is preferred over [b]. Steps, in order:
    highest local-pref; shortest AS path; lowest origin; lowest MED
    (compared only between routes from the same neighbor AS, missing
    MED = 0); eBGP over iBGP; lowest peer router-id; lowest peer
    address; lowest path-id. Locally originated routes win over all
    learned routes (they behave as weight = maximum). *)

val best : Route.t list -> Route.t option
(** The most preferred route, or [None] on an empty list. *)

val sort : Route.t list -> Route.t list
(** Candidates ordered best-first. *)

val explain : Route.t -> Route.t -> string
(** Human-readable reason why the preferred of the two wins — used by
    PoiRoot-style root-cause experiments. *)
