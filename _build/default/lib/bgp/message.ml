open Peering_net

type open_msg = {
  version : int;
  asn : Asn.t;
  hold_time : int;
  router_id : Ipv4.t;
  capabilities : Capability.t list;
}

type path_id = int

type update = {
  withdrawn : (path_id * Prefix.t) list;
  attrs : Attrs.t option;
  nlri : (path_id * Prefix.t) list;
}

type notification = { code : int; subcode : int; reason : string }

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

module Error = struct
  let message_header = 1
  let open_message = 2
  let update_message = 3
  let hold_timer_expired = 4
  let fsm = 5
  let cease = 6
end

let update_of_announce ?(path_id = 0) prefix attrs =
  Update { withdrawn = []; attrs = Some attrs; nlri = [ (path_id, prefix) ] }

let update_of_withdraw ?(path_id = 0) prefix =
  Update { withdrawn = [ (path_id, prefix) ]; attrs = None; nlri = [] }

let pp ppf = function
  | Open o ->
    Format.fprintf ppf "OPEN v%d %a hold=%ds id=%a caps=[%a]" o.version Asn.pp
      o.asn o.hold_time Ipv4.pp o.router_id
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Capability.pp)
      o.capabilities
  | Update u ->
    let pp_pfx ppf (pid, p) =
      if pid = 0 then Prefix.pp ppf p
      else Format.fprintf ppf "%a#%d" Prefix.pp p pid
    in
    Format.fprintf ppf "UPDATE withdraw=[%a] nlri=[%a]%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         pp_pfx)
      u.withdrawn
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         pp_pfx)
      u.nlri
      (fun ppf -> function
        | Some a -> Format.fprintf ppf " %a" Attrs.pp a
        | None -> ())
      u.attrs
  | Keepalive -> Format.fprintf ppf "KEEPALIVE"
  | Notification n ->
    Format.fprintf ppf "NOTIFICATION %d/%d %s" n.code n.subcode n.reason
