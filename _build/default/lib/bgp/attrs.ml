open Peering_net

type origin = IGP | EGP | INCOMPLETE

let origin_rank = function IGP -> 0 | EGP -> 1 | INCOMPLETE -> 2

let origin_to_string = function
  | IGP -> "IGP"
  | EGP -> "EGP"
  | INCOMPLETE -> "incomplete"

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Ipv4.t) option;
  communities : Community.t list;
}

let make ?(origin = IGP) ?(as_path = As_path.empty) ?med ?local_pref
    ?(atomic_aggregate = false) ?aggregator ?(communities = []) ~next_hop () =
  { origin;
    as_path;
    next_hop;
    med;
    local_pref;
    atomic_aggregate;
    aggregator;
    communities = List.sort_uniq Community.compare communities
  }

let with_communities cs t =
  { t with communities = List.sort_uniq Community.compare cs }

let add_community c t = { t with communities = Community.add c t.communities }
let has_community c t = Community.mem c t.communities
let prepend_asn a t = { t with as_path = As_path.prepend a t.as_path }
let with_next_hop nh t = { t with next_hop = nh }
let with_local_pref lp t = { t with local_pref = lp }
let with_med med t = { t with med }

let compare a b =
  let cmp_opt c x y =
    match (x, y) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some u, Some v -> c u v
  in
  let ( <?> ) c rest = if c <> 0 then c else rest () in
  Int.compare (origin_rank a.origin) (origin_rank b.origin) <?> fun () ->
  As_path.compare a.as_path b.as_path <?> fun () ->
  Ipv4.compare a.next_hop b.next_hop <?> fun () ->
  cmp_opt Int.compare a.med b.med <?> fun () ->
  cmp_opt Int.compare a.local_pref b.local_pref <?> fun () ->
  Bool.compare a.atomic_aggregate b.atomic_aggregate <?> fun () ->
  cmp_opt
    (fun (x1, y1) (x2, y2) ->
      match Asn.compare x1 x2 with 0 -> Ipv4.compare y1 y2 | c -> c)
    a.aggregator b.aggregator
  <?> fun () -> List.compare Community.compare a.communities b.communities

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "@[<h>origin=%s path=[%a] nh=%a"
    (origin_to_string t.origin) As_path.pp t.as_path Ipv4.pp t.next_hop;
  Option.iter (fun m -> Format.fprintf ppf " med=%d" m) t.med;
  Option.iter (fun l -> Format.fprintf ppf " lp=%d" l) t.local_pref;
  if t.communities <> [] then
    Format.fprintf ppf " comm=%s"
      (String.concat "," (List.map Community.to_string t.communities));
  Format.fprintf ppf "@]"
