open Peering_net

type segment = Seq of Asn.t list | Set of Asn.t list
type t = segment list

let empty = []
let of_asns = function [] -> [] | l -> [ Seq l ]

let to_asns p =
  List.concat_map (function Seq l | Set l -> l) p

let prepend a = function
  | Seq l :: rest -> Seq (a :: l) :: rest
  | p -> Seq [ a ] :: p

let rec prepend_n a n p = if n <= 0 then p else prepend_n a (n - 1) (prepend a p)

let length p =
  List.fold_left
    (fun acc -> function Seq l -> acc + List.length l | Set _ -> acc + 1)
    0 p

let mem a p =
  List.exists
    (function Seq l | Set l -> List.exists (Asn.equal a) l)
    p

let origin_asn p =
  match List.rev p with
  | Seq l :: _ -> (
    match List.rev l with x :: _ -> Some x | [] -> None)
  | Set _ :: _ | [] -> None

let neighbor_asn p =
  match p with
  | Seq (x :: _) :: _ -> Some x
  | Seq [] :: rest -> (
    match rest with Seq (x :: _) :: _ -> Some x | _ -> None)
  | Set _ :: _ | [] -> None

let strip_private p =
  List.filter_map
    (fun seg ->
      let keep l = List.filter (fun a -> not (Asn.is_private a)) l in
      match seg with
      | Seq l -> ( match keep l with [] -> None | l' -> Some (Seq l'))
      | Set l -> ( match keep l with [] -> None | l' -> Some (Set l')))
    p

let aggregate p q =
  let pa = to_asns p and qa = to_asns q in
  let rec common acc = function
    | x :: xs, y :: ys when Asn.equal x y -> common (x :: acc) (xs, ys)
    | rest -> (List.rev acc, rest)
  in
  let head, (ptail, qtail) = common [] (pa, qa) in
  let tail = List.sort_uniq Asn.compare (ptail @ qtail) in
  match (head, tail) with
  | [], [] -> []
  | h, [] -> [ Seq h ]
  | [], t -> [ Set t ]
  | h, t -> [ Seq h; Set t ]

let segment_compare s1 s2 =
  match (s1, s2) with
  | Seq a, Seq b | Set a, Set b -> List.compare Asn.compare a b
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare = List.compare segment_compare
let equal p q = compare p q = 0

let to_string p =
  let seg = function
    | Seq l -> String.concat " " (List.map (fun a -> string_of_int (Asn.to_int a)) l)
    | Set l ->
      "{" ^ String.concat "," (List.map (fun a -> string_of_int (Asn.to_int a)) l) ^ "}"
  in
  String.concat " " (List.map seg p)

let pp ppf p = Format.pp_print_string ppf (to_string p)
