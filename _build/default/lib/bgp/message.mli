(** BGP-4 messages (RFC 4271 §4). *)

open Peering_net

type open_msg = {
  version : int;  (** always 4 *)
  asn : Asn.t;
  hold_time : int;  (** seconds; 0 disables keepalives *)
  router_id : Ipv4.t;
  capabilities : Capability.t list;
}

type path_id = int

type update = {
  withdrawn : (path_id * Prefix.t) list;
  attrs : Attrs.t option;  (** [None] iff [nlri] is empty *)
  nlri : (path_id * Prefix.t) list;
}

type notification = {
  code : int;
  subcode : int;
  reason : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

(** Standard notification error codes (RFC 4271 §4.5). *)
module Error : sig
  val message_header : int
  val open_message : int
  val update_message : int
  val hold_timer_expired : int
  val fsm : int
  val cease : int
end

val update_of_announce : ?path_id:path_id -> Prefix.t -> Attrs.t -> t
val update_of_withdraw : ?path_id:path_id -> Prefix.t -> t
val pp : Format.formatter -> t -> unit
