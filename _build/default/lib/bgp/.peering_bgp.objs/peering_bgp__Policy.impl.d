lib/bgp/policy.ml: As_path Asn Attrs Community Int Ipv4 List Peering_net Prefix Route
