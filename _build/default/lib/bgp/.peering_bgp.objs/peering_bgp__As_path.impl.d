lib/bgp/as_path.ml: Asn Format List Peering_net String
