lib/bgp/message.ml: Asn Attrs Capability Format Ipv4 Peering_net Prefix
