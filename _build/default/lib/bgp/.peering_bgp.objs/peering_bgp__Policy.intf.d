lib/bgp/policy.mli: Asn Community Ipv4 Peering_net Prefix Route
