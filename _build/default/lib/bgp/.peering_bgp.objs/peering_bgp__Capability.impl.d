lib/bgp/capability.ml: Format List
