lib/bgp/session.ml: Bytes Fsm Ipv4 Message Option Peering_net Peering_sim Wire
