lib/bgp/route.mli: Asn Attrs Format Ipv4 Peering_net Prefix
