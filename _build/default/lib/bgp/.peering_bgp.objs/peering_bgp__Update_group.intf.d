lib/bgp/update_group.mli: Attrs Message Peering_net Prefix Wire
