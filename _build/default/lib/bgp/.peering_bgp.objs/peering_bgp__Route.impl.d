lib/bgp/route.ml: As_path Asn Attrs Bool Format Int Ipv4 Peering_net Prefix
