lib/bgp/rpki.ml: Asn List Option Peering_net Prefix Prefix_trie Route
