lib/bgp/fsm.mli: Asn Capability Ipv4 Message Peering_net Peering_sim Wire
