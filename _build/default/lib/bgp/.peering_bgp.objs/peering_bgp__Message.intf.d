lib/bgp/message.mli: Asn Attrs Capability Format Ipv4 Peering_net Prefix
