lib/bgp/update_group.ml: Attrs Bytes List Message Peering_net Prefix Wire
