lib/bgp/mp.ml: Attrs Buffer Bytes Char Int64 Ipv4 Ipv6 List Message Option Peering_net Prefix6 Wire
