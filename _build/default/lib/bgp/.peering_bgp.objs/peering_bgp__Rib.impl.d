lib/bgp/rib.ml: Decision List Map Option Peering_net Prefix Prefix_trie Route String
