lib/bgp/community.mli: Asn Format Peering_net
