lib/bgp/dampening.mli: Peering_net Prefix
