lib/bgp/wire.ml: As_path Asn Attrs Buffer Bytes Capability Char Community Ipv4 List Message Option Peering_net Prefix Printf
