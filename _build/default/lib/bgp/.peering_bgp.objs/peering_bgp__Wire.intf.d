lib/bgp/wire.mli: Message
