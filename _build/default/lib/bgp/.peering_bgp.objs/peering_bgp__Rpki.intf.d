lib/bgp/rpki.mli: Asn Peering_net Prefix Route
