lib/bgp/attrs.ml: As_path Asn Bool Community Format Int Ipv4 List Option Peering_net String
