lib/bgp/session.mli: Fsm Ipv4 Message Peering_net Peering_sim Wire
