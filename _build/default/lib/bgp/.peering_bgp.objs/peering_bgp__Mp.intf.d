lib/bgp/mp.mli: Attrs Ipv6 Peering_net Prefix6 Wire
