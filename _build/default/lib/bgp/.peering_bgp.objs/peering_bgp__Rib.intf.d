lib/bgp/rib.mli: Ipv4 Peering_net Prefix Route
