lib/bgp/community.ml: Asn Format Int List Peering_net Printf String
