lib/bgp/decision.ml: As_path Asn Attrs Bool Format Int Ipv4 List Option Peering_net Route
