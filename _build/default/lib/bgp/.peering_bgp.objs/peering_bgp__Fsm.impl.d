lib/bgp/fsm.ml: Asn Capability Ipv4 Message Peering_net Peering_sim Printf Wire
