lib/bgp/dampening.ml: Float Hashtbl Peering_net Prefix
