lib/bgp/capability.mli: Format
