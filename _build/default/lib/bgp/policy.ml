open Peering_net

type cond =
  | Prefix_in of (Prefix.t * int * int) list
  | Prefix_exact of Prefix.t list
  | Path_contains of Asn.t
  | Originated_by of Asn.t
  | Neighbor_is of Asn.t
  | Has_community of Community.t
  | Path_length_le of int
  | Has_private_asn
  | Not of cond
  | All of cond list
  | Any of cond list

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Community.t
  | Del_community of Community.t
  | Clear_communities
  | Prepend of Asn.t * int
  | Set_next_hop of Ipv4.t
  | Strip_private_asns

type decision = Permit | Deny

type entry = {
  seq : int;
  decision : decision;
  conds : cond list;
  actions : action list;
}

type t = entry list (* sorted by seq *)

let empty = []

let permit_all =
  [ { seq = 10; decision = Permit; conds = []; actions = [] } ]

let of_entries l =
  let sorted = List.sort (fun a b -> Int.compare a.seq b.seq) l in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a.seq = b.seq then invalid_arg "Policy.of_entries: duplicate seq";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let entries t = t
let add e t = of_entries (e :: t)

let rec eval_cond cond (r : Route.t) =
  let path = r.attrs.Attrs.as_path in
  match cond with
  | Prefix_in l ->
    List.exists
      (fun (p, ge, le) ->
        Prefix.subsumes p r.prefix
        && Prefix.len r.prefix >= ge
        && Prefix.len r.prefix <= le)
      l
  | Prefix_exact l -> List.exists (Prefix.equal r.prefix) l
  | Path_contains a -> As_path.mem a path
  | Originated_by a -> (
    match As_path.origin_asn path with
    | Some o -> Asn.equal o a
    | None -> false)
  | Neighbor_is a -> (
    match As_path.neighbor_asn path with
    | Some n -> Asn.equal n a
    | None -> false)
  | Has_community c -> Attrs.has_community c r.attrs
  | Path_length_le n -> As_path.length path <= n
  | Has_private_asn -> List.exists Asn.is_private (As_path.to_asns path)
  | Not c -> not (eval_cond c r)
  | All cs -> List.for_all (fun c -> eval_cond c r) cs
  | Any cs -> List.exists (fun c -> eval_cond c r) cs

let apply_action (r : Route.t) action =
  let attrs = r.attrs in
  let attrs =
    match action with
    | Set_local_pref lp -> Attrs.with_local_pref (Some lp) attrs
    | Set_med med -> Attrs.with_med med attrs
    | Add_community c -> Attrs.add_community c attrs
    | Del_community c ->
      Attrs.with_communities
        (Community.remove c attrs.Attrs.communities)
        attrs
    | Clear_communities -> Attrs.with_communities [] attrs
    | Prepend (a, n) ->
      { attrs with Attrs.as_path = As_path.prepend_n a n attrs.Attrs.as_path }
    | Set_next_hop nh -> Attrs.with_next_hop nh attrs
    | Strip_private_asns ->
      { attrs with Attrs.as_path = As_path.strip_private attrs.Attrs.as_path }
  in
  { r with Route.attrs }

let apply t r =
  let matches e = List.for_all (fun c -> eval_cond c r) e.conds in
  match List.find_opt matches t with
  | None -> None
  | Some e -> (
    match e.decision with
    | Deny -> None
    | Permit -> Some (List.fold_left apply_action r e.actions))

let chain maps r =
  List.fold_left
    (fun acc m -> match acc with None -> None | Some r -> apply m r)
    (Some r) maps
