open Peering_net

type t = int

let make asn value =
  if asn < 0 || asn > 0xFFFF || value < 0 || value > 0xFFFF then
    invalid_arg "Community.make";
  (asn lsl 16) lor value

let of_int32 v = v land 0xFFFFFFFF
let to_int32 c = c
let asn_part c = (c lsr 16) land 0xFFFF
let value_part c = c land 0xFFFF

let no_export = 0xFFFFFF01
let no_advertise = 0xFFFFFF02
let no_export_subconfed = 0xFFFFFF03

let is_well_known c =
  c = no_export || c = no_advertise || c = no_export_subconfed

let of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let a = String.sub s 0 i
    and v = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt a, int_of_string_opt v) with
    | Some a, Some v when a >= 0 && a <= 0xFFFF && v >= 0 && v <= 0xFFFF ->
      Some (make a v)
    | _ -> None)

let to_string c =
  if c = no_export then "no-export"
  else if c = no_advertise then "no-advertise"
  else if c = no_export_subconfed then "no-export-subconfed"
  else Printf.sprintf "%d:%d" (asn_part c) (value_part c)

let compare = Int.compare
let equal = Int.equal
let pp ppf c = Format.pp_print_string ppf (to_string c)

let mem c l = List.exists (equal c) l

let add c l =
  if mem c l then l else List.sort compare (c :: l)

let remove c l = List.filter (fun x -> not (equal c x)) l

let matching_asn asn l =
  List.filter (fun c -> asn_part c = Asn.to_int asn land 0xFFFF) l
