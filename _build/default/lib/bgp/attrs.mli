(** BGP path attributes carried with a route. *)

open Peering_net

type origin = IGP | EGP | INCOMPLETE

val origin_rank : origin -> int
(** Decision-process rank: IGP (0) < EGP (1) < INCOMPLETE (2), lower
    preferred. *)

val origin_to_string : origin -> string

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Ipv4.t) option;
  communities : Community.t list;  (** kept sorted, duplicate-free *)
}

val make :
  ?origin:origin ->
  ?as_path:As_path.t ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?aggregator:Asn.t * Ipv4.t ->
  ?communities:Community.t list ->
  next_hop:Ipv4.t ->
  unit ->
  t
(** Defaults: origin [IGP], empty path, no MED/local-pref, no
    communities. *)

val with_communities : Community.t list -> t -> t
val add_community : Community.t -> t -> t
val has_community : Community.t -> t -> bool
val prepend_asn : Asn.t -> t -> t
val with_next_hop : Ipv4.t -> t -> t
val with_local_pref : int option -> t -> t
val with_med : int option -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
