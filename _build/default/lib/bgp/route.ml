open Peering_net

type source = {
  peer_asn : Asn.t;
  peer_addr : Ipv4.t;
  peer_router_id : Ipv4.t;
  ebgp : bool;
}

type t = {
  prefix : Prefix.t;
  attrs : Attrs.t;
  source : source option;
  path_id : int;
  learned_at : float;
}

let make ?source ?(path_id = 0) ?(learned_at = 0.0) prefix attrs =
  { prefix; attrs; source; path_id; learned_at }

let local prefix attrs = make prefix attrs

let origin_asn t = As_path.origin_asn t.attrs.Attrs.as_path

let is_ebgp t =
  match t.source with Some s -> s.ebgp | None -> false

let source_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
    Asn.equal x.peer_asn y.peer_asn
    && Ipv4.equal x.peer_addr y.peer_addr
    && Ipv4.equal x.peer_router_id y.peer_router_id
    && Bool.equal x.ebgp y.ebgp
  | None, Some _ | Some _, None -> false

let equal a b =
  Prefix.equal a.prefix b.prefix
  && Attrs.equal a.attrs b.attrs
  && source_equal a.source b.source
  && Int.equal a.path_id b.path_id

let pp ppf t =
  Format.fprintf ppf "@[<h>%a %a" Prefix.pp t.prefix Attrs.pp t.attrs;
  (match t.source with
  | Some s -> Format.fprintf ppf " from %a" Asn.pp s.peer_asn
  | None -> Format.fprintf ppf " local");
  if t.path_id <> 0 then Format.fprintf ppf " path-id=%d" t.path_id;
  Format.fprintf ppf "@]"
