open Peering_net

let max_message = 4096
let header_overhead = 23 (* marker + length + type + the two length fields *)

let prefix_bytes opts p =
  (if opts.Wire.add_path then 4 else 0) + 1 + ((Prefix.len p + 7) / 8)

let attrs_bytes opts attrs =
  (* Encode once to size the fixed part of each message. *)
  Bytes.length
    (Wire.encode opts
       (Message.Update { withdrawn = []; attrs = Some attrs; nlri = [] }))
  - 19 (* marker+len+type *)

(* Split [prefixes] into chunks whose encoded size fits alongside
   [fixed] bytes of attribute data. *)
let chunk opts ~fixed prefixes =
  let budget = max_message - header_overhead - fixed in
  let rec go current size acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | p :: rest ->
      let b = prefix_bytes opts p in
      if size + b > budget && current <> [] then
        go [ p ] b (List.rev current :: acc) rest
      else go (p :: current) (size + b) acc rest
  in
  go [] 0 [] prefixes

let group ?(opts = Wire.default_opts) announcements =
  (* Bucket by attribute equality, preserving first-seen order. *)
  let buckets : (Attrs.t * Prefix.t list ref) list ref = ref [] in
  List.iter
    (fun (p, attrs) ->
      match
        List.find_opt (fun (a, _) -> Attrs.equal a attrs) !buckets
      with
      | Some (_, l) -> l := p :: !l
      | None -> buckets := !buckets @ [ (attrs, ref [ p ]) ])
    announcements;
  List.concat_map
    (fun (attrs, l) ->
      let fixed = attrs_bytes opts attrs in
      List.map
        (fun prefixes ->
          { Message.withdrawn = [];
            attrs = Some attrs;
            nlri = List.map (fun p -> (0, p)) prefixes
          })
        (chunk opts ~fixed (List.rev !l)))
    !buckets

let group_withdrawals ?(opts = Wire.default_opts) prefixes =
  List.map
    (fun chunk_prefixes ->
      { Message.withdrawn = List.map (fun p -> (0, p)) chunk_prefixes;
        attrs = None;
        nlri = []
      })
    (chunk opts ~fixed:0 prefixes)

let message_count ?(opts = Wire.default_opts) announcements =
  List.length (group ~opts announcements)
