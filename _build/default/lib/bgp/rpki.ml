open Peering_net

type roa = {
  prefix : Prefix.t;
  max_length : int;
  origin : Asn.t;
}

type validity = Valid | Invalid | Not_found

let validity_to_string = function
  | Valid -> "valid"
  | Invalid -> "invalid"
  | Not_found -> "not-found"

type t = roa list Prefix_trie.t

let empty = Prefix_trie.empty

let add_roa t ?max_length ~prefix origin =
  let max_length = Option.value max_length ~default:(Prefix.len prefix) in
  if max_length < Prefix.len prefix || max_length > 32 then
    invalid_arg "Rpki.add_roa: bad max_length";
  let roa = { prefix; max_length; origin } in
  Prefix_trie.update prefix
    (function
      | Some roas -> Some (roa :: roas)
      | None -> Some [ roa ])
    t

let roa_count t = Prefix_trie.fold (fun _ roas n -> n + List.length roas) t 0

let covering t prefix =
  Prefix_trie.matches (Prefix.addr prefix) t
  |> List.concat_map (fun (covering_prefix, roas) ->
         if Prefix.subsumes covering_prefix prefix then roas else [])

let validate t ~prefix ~origin =
  match covering t prefix with
  | [] -> Not_found
  | roas -> (
    match origin with
    | None -> Invalid
    | Some o ->
      if
        List.exists
          (fun roa ->
            Asn.equal roa.origin o && Prefix.len prefix <= roa.max_length)
          roas
      then Valid
      else Invalid)

let validate_route t (r : Route.t) =
  validate t ~prefix:r.Route.prefix ~origin:(Route.origin_asn r)
