open Peering_net

type session_opts = { four_octet_asn : bool; add_path : bool }

let default_opts = { four_octet_asn = false; add_path = false }

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_version of int
  | Bad_attribute of string
  | Bad_capability of string

let error_to_string = function
  | Truncated -> "truncated message"
  | Bad_marker -> "bad marker"
  | Bad_length n -> Printf.sprintf "bad length %d" n
  | Bad_type n -> Printf.sprintf "bad message type %d" n
  | Bad_version n -> Printf.sprintf "bad version %d" n
  | Bad_attribute s -> Printf.sprintf "bad attribute: %s" s
  | Bad_capability s -> Printf.sprintf "bad capability: %s" s

let as_trans = 23456

(* ------------------------------------------------------------------ *)
(* Encoding *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_asn opts b asn =
  let a = Asn.to_int asn in
  if opts.four_octet_asn then put_u32 b a
  else put_u16 b (if a > 0xFFFF then as_trans else a)

let prefix_byte_len l = (l + 7) / 8

let put_prefix opts b (path_id, p) =
  if opts.add_path then put_u32 b path_id;
  let l = Prefix.len p in
  put_u8 b l;
  let a = Ipv4.to_int (Prefix.addr p) in
  for i = 0 to prefix_byte_len l - 1 do
    put_u8 b ((a lsr (24 - (8 * i))) land 0xFF)
  done

let put_as_path opts b path =
  List.iter
    (fun seg ->
      let ty, asns =
        match seg with
        | As_path.Set l -> (1, l)
        | As_path.Seq l -> (2, l)
      in
      put_u8 b ty;
      put_u8 b (List.length asns);
      List.iter (put_asn opts b) asns)
    path

(* flags, type code, and body writer *)
let put_attribute b ~flags ~code body =
  let len = Buffer.length body in
  let flags = if len > 255 then flags lor 0x10 else flags in
  put_u8 b flags;
  put_u8 b code;
  if flags land 0x10 <> 0 then put_u16 b len else put_u8 b len;
  Buffer.add_buffer b body

let encode_attrs opts (a : Attrs.t) =
  let b = Buffer.create 64 in
  (* ORIGIN, well-known mandatory *)
  let body = Buffer.create 1 in
  put_u8 body (Attrs.origin_rank a.origin);
  put_attribute b ~flags:0x40 ~code:1 body;
  (* AS_PATH *)
  let body = Buffer.create 16 in
  put_as_path opts body a.as_path;
  put_attribute b ~flags:0x40 ~code:2 body;
  (* NEXT_HOP *)
  let body = Buffer.create 4 in
  put_u32 body (Ipv4.to_int a.next_hop);
  put_attribute b ~flags:0x40 ~code:3 body;
  (* MED, optional non-transitive *)
  Option.iter
    (fun med ->
      let body = Buffer.create 4 in
      put_u32 body med;
      put_attribute b ~flags:0x80 ~code:4 body)
    a.med;
  (* LOCAL_PREF *)
  Option.iter
    (fun lp ->
      let body = Buffer.create 4 in
      put_u32 body lp;
      put_attribute b ~flags:0x40 ~code:5 body)
    a.local_pref;
  if a.atomic_aggregate then
    put_attribute b ~flags:0x40 ~code:6 (Buffer.create 0);
  Option.iter
    (fun (asn, addr) ->
      let body = Buffer.create 8 in
      put_asn opts body asn;
      put_u32 body (Ipv4.to_int addr);
      put_attribute b ~flags:0xC0 ~code:7 body)
    a.aggregator;
  if a.communities <> [] then begin
    let body = Buffer.create (4 * List.length a.communities) in
    List.iter (fun c -> put_u32 body (Community.to_int32 c)) a.communities;
    put_attribute b ~flags:0xC0 ~code:8 body
  end;
  b

let encode_capability b (cap : Capability.t) =
  match cap with
  | Capability.Route_refresh ->
    put_u8 b 2;
    put_u8 b 0
  | Capability.Graceful_restart secs ->
    put_u8 b 64;
    put_u8 b 2;
    put_u16 b (secs land 0x0FFF)
  | Capability.Four_octet_asn asn ->
    put_u8 b 65;
    put_u8 b 4;
    put_u32 b asn
  | Capability.Add_path mode ->
    put_u8 b 69;
    put_u8 b 4;
    put_u16 b 1 (* AFI IPv4 *);
    put_u8 b 1 (* SAFI unicast *);
    put_u8 b
      (match mode with
      | Capability.Receive -> 1
      | Capability.Send -> 2
      | Capability.Send_receive -> 3)

let encode_open (o : Message.open_msg) =
  let b = Buffer.create 64 in
  put_u8 b o.version;
  let a = Asn.to_int o.asn in
  put_u16 b (if a > 0xFFFF then as_trans else a);
  put_u16 b o.hold_time;
  put_u32 b (Ipv4.to_int o.router_id);
  let caps = Buffer.create 32 in
  List.iter (encode_capability caps) o.capabilities;
  if Buffer.length caps = 0 then put_u8 b 0
  else begin
    (* one optional parameter of type 2 (capabilities) *)
    put_u8 b (Buffer.length caps + 2);
    put_u8 b 2;
    put_u8 b (Buffer.length caps);
    Buffer.add_buffer b caps
  end;
  b

let encode_update opts (u : Message.update) =
  let b = Buffer.create 128 in
  let withdrawn = Buffer.create 32 in
  List.iter (put_prefix opts withdrawn) u.withdrawn;
  put_u16 b (Buffer.length withdrawn);
  Buffer.add_buffer b withdrawn;
  let attrs =
    match u.attrs with
    | Some a -> encode_attrs opts a
    | None -> Buffer.create 0
  in
  put_u16 b (Buffer.length attrs);
  Buffer.add_buffer b attrs;
  List.iter (put_prefix opts b) u.nlri;
  b

let encode_notification (n : Message.notification) =
  let b = Buffer.create 32 in
  put_u8 b n.code;
  put_u8 b n.subcode;
  Buffer.add_string b n.reason;
  b

let encode opts msg =
  let ty, body =
    match msg with
    | Message.Open o -> (1, encode_open o)
    | Message.Update u -> (2, encode_update opts u)
    | Message.Notification n -> (3, encode_notification n)
    | Message.Keepalive -> (4, Buffer.create 0)
  in
  let b = Buffer.create (19 + Buffer.length body) in
  for _ = 1 to 16 do
    Buffer.add_char b '\xFF'
  done;
  put_u16 b (19 + Buffer.length body);
  put_u8 b ty;
  Buffer.add_buffer b body;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Fail of error

type reader = { buf : bytes; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let hi = u8 r in
  let lo = u8 r in
  (hi lsl 8) lor lo

let u32 r =
  let hi = u16 r in
  let lo = u16 r in
  (hi lsl 16) lor lo

let get_asn opts r = Asn.of_int (if opts.four_octet_asn then u32 r else u16 r)

let get_prefix opts r =
  let path_id = if opts.add_path then u32 r else 0 in
  let l = u8 r in
  if l > 32 then raise (Fail (Bad_attribute "prefix length > 32"));
  let nbytes = prefix_byte_len l in
  let a = ref 0 in
  for i = 0 to nbytes - 1 do
    a := !a lor (u8 r lsl (24 - (8 * i)))
  done;
  (path_id, Prefix.make (Ipv4.of_int !a) l)

let get_prefixes opts r =
  let acc = ref [] in
  while r.pos < r.limit do
    acc := get_prefix opts r :: !acc
  done;
  List.rev !acc

let get_as_path opts r =
  let segs = ref [] in
  while r.pos < r.limit do
    let ty = u8 r in
    let n = u8 r in
    let asns = List.init n (fun _ -> get_asn opts r) in
    let seg =
      match ty with
      | 1 -> As_path.Set asns
      | 2 -> As_path.Seq asns
      | t -> raise (Fail (Bad_attribute (Printf.sprintf "segment type %d" t)))
    in
    segs := seg :: !segs
  done;
  List.rev !segs

type partial_attrs = {
  mutable p_origin : Attrs.origin option;
  mutable p_as_path : As_path.t option;
  mutable p_next_hop : Ipv4.t option;
  mutable p_med : int option;
  mutable p_local_pref : int option;
  mutable p_atomic : bool;
  mutable p_aggregator : (Asn.t * Ipv4.t) option;
  mutable p_communities : Community.t list;
}

let decode_attrs opts r =
  let p =
    { p_origin = None;
      p_as_path = None;
      p_next_hop = None;
      p_med = None;
      p_local_pref = None;
      p_atomic = false;
      p_aggregator = None;
      p_communities = []
    }
  in
  while r.pos < r.limit do
    let flags = u8 r in
    let code = u8 r in
    let len = if flags land 0x10 <> 0 then u16 r else u8 r in
    need r len;
    let sub = { buf = r.buf; pos = r.pos; limit = r.pos + len } in
    r.pos <- r.pos + len;
    (match code with
    | 1 ->
      p.p_origin <-
        Some
          (match u8 sub with
          | 0 -> Attrs.IGP
          | 1 -> Attrs.EGP
          | 2 -> Attrs.INCOMPLETE
          | o -> raise (Fail (Bad_attribute (Printf.sprintf "origin %d" o))))
    | 2 -> p.p_as_path <- Some (get_as_path opts sub)
    | 3 -> p.p_next_hop <- Some (Ipv4.of_int (u32 sub))
    | 4 -> p.p_med <- Some (u32 sub)
    | 5 -> p.p_local_pref <- Some (u32 sub)
    | 6 -> p.p_atomic <- true
    | 7 ->
      let asn = get_asn opts sub in
      let addr = Ipv4.of_int (u32 sub) in
      p.p_aggregator <- Some (asn, addr)
    | 8 ->
      let cs = ref [] in
      while sub.pos < sub.limit do
        cs := Community.of_int32 (u32 sub) :: !cs
      done;
      p.p_communities <- List.rev !cs
    | _ when flags land 0x80 <> 0 -> () (* skip unknown optional *)
    | c -> raise (Fail (Bad_attribute (Printf.sprintf "unknown mandatory %d" c))))
  done;
  match (p.p_origin, p.p_as_path, p.p_next_hop) with
  | Some origin, Some as_path, Some next_hop ->
    Some
      (Attrs.make ~origin ~as_path ?med:p.p_med ?local_pref:p.p_local_pref
         ~atomic_aggregate:p.p_atomic ?aggregator:p.p_aggregator
         ~communities:p.p_communities ~next_hop ())
  | None, None, None ->
    (* Only optional attributes (e.g. MP_REACH/MP_UNREACH, RFC 4760):
       legal for an UPDATE without v4 NLRI. *)
    None
  | None, _, _ -> raise (Fail (Bad_attribute "missing ORIGIN"))
  | _, None, _ -> raise (Fail (Bad_attribute "missing AS_PATH"))
  | _, _, None -> raise (Fail (Bad_attribute "missing NEXT_HOP"))

let decode_capability r =
  let code = u8 r in
  let len = u8 r in
  need r len;
  let sub = { buf = r.buf; pos = r.pos; limit = r.pos + len } in
  r.pos <- r.pos + len;
  match code with
  | 2 -> Some Capability.Route_refresh
  | 64 -> Some (Capability.Graceful_restart (u16 sub land 0x0FFF))
  | 65 -> Some (Capability.Four_octet_asn (u32 sub))
  | 69 ->
    let _afi = u16 sub in
    let _safi = u8 sub in
    let mode =
      match u8 sub with
      | 1 -> Capability.Receive
      | 2 -> Capability.Send
      | 3 -> Capability.Send_receive
      | m -> raise (Fail (Bad_capability (Printf.sprintf "add-path mode %d" m)))
    in
    Some (Capability.Add_path mode)
  | _ -> None (* ignore unknown capabilities *)

let decode_open r =
  let version = u8 r in
  if version <> 4 then raise (Fail (Bad_version version));
  let asn16 = u16 r in
  let hold_time = u16 r in
  let router_id = Ipv4.of_int (u32 r) in
  let opt_len = u8 r in
  need r opt_len;
  let params = { buf = r.buf; pos = r.pos; limit = r.pos + opt_len } in
  r.pos <- r.pos + opt_len;
  let caps = ref [] in
  while params.pos < params.limit do
    let pty = u8 params in
    let plen = u8 params in
    need params plen;
    let sub = { buf = params.buf; pos = params.pos; limit = params.pos + plen } in
    params.pos <- params.pos + plen;
    if pty = 2 then
      while sub.pos < sub.limit do
        match decode_capability sub with
        | Some c -> caps := c :: !caps
        | None -> ()
      done
  done;
  let capabilities = List.rev !caps in
  (* If a 4-octet capability is present it carries the true ASN. *)
  let asn =
    match
      List.find_map
        (function Capability.Four_octet_asn a -> Some a | _ -> None)
        capabilities
    with
    | Some a -> Asn.of_int a
    | None -> Asn.of_int asn16
  in
  Message.Open { version; asn; hold_time; router_id; capabilities }

let decode_update opts r =
  let wlen = u16 r in
  need r wlen;
  let wsub = { buf = r.buf; pos = r.pos; limit = r.pos + wlen } in
  r.pos <- r.pos + wlen;
  let withdrawn = get_prefixes opts wsub in
  let alen = u16 r in
  need r alen;
  let asub = { buf = r.buf; pos = r.pos; limit = r.pos + alen } in
  r.pos <- r.pos + alen;
  let attrs = if alen = 0 then None else decode_attrs opts asub in
  let nlri = get_prefixes opts r in
  if nlri <> [] && attrs = None then
    raise (Fail (Bad_attribute "NLRI without path attributes"));
  Message.Update { withdrawn; attrs; nlri }

let decode_notification r =
  let code = u8 r in
  let subcode = u8 r in
  let reason = Bytes.sub_string r.buf r.pos (r.limit - r.pos) in
  r.pos <- r.limit;
  Message.Notification { code; subcode; reason }

let decode opts buf ~pos =
  try
    let total = Bytes.length buf in
    if pos + 19 > total then raise (Fail Truncated);
    for i = pos to pos + 15 do
      if Bytes.get buf i <> '\xFF' then raise (Fail Bad_marker)
    done;
    let hdr = { buf; pos = pos + 16; limit = total } in
    let len = u16 hdr in
    if len < 19 || len > 4096 then raise (Fail (Bad_length len));
    if pos + len > total then raise (Fail Truncated);
    let ty = u8 hdr in
    let r = { buf; pos = pos + 19; limit = pos + len } in
    let msg =
      match ty with
      | 1 -> decode_open r
      | 2 -> decode_update opts r
      | 3 -> decode_notification r
      | 4 ->
        if len <> 19 then raise (Fail (Bad_length len));
        Message.Keepalive
      | t -> raise (Fail (Bad_type t))
    in
    Ok (msg, pos + len)
  with Fail e -> Error e

let decode_exn opts buf =
  match decode opts buf ~pos:0 with
  | Ok (msg, n) when n = Bytes.length buf -> msg
  | Ok _ -> failwith "Wire.decode_exn: trailing bytes"
  | Error e -> failwith ("Wire.decode_exn: " ^ error_to_string e)
