(** Binary encoding of BGP messages (RFC 4271), with 4-octet ASNs
    (RFC 6793) and ADD-PATH prefixes (RFC 7911).

    Whether ASNs occupy 2 or 4 bytes and whether NLRI carry path
    identifiers is session state negotiated via OPEN capabilities, so
    both directions of the codec take explicit {!session_opts}. *)

type session_opts = {
  four_octet_asn : bool;  (** encode ASNs on 4 bytes in AS_PATH etc. *)
  add_path : bool;  (** prefixes carry a 4-byte path identifier *)
}

val default_opts : session_opts
(** 2-byte ASNs, no ADD-PATH — what a pre-negotiation decoder assumes
    (OPEN messages themselves never depend on the options). *)

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_version of int
  | Bad_attribute of string
  | Bad_capability of string

val error_to_string : error -> string

val encode : session_opts -> Message.t -> bytes
(** Serialise a message, including the 19-byte header. *)

val decode : session_opts -> bytes -> pos:int -> (Message.t * int, error) result
(** [decode opts buf ~pos] parses one message starting at [pos];
    returns the message and the position one past its end. *)

val decode_exn : session_opts -> bytes -> Message.t
(** Decode a buffer holding exactly one message; raises [Failure] on
    any error or trailing bytes. Convenience for tests. *)
