(** Update packing: group prefixes that share path attributes into
    combined UPDATE messages, respecting the 4096-byte message limit
    (RFC 4271 §4.1).

    A full-table dump to a fresh session sends each distinct attribute
    set once with many NLRI, rather than one UPDATE per prefix — the
    difference between ~500K messages and ~50K for an Internet
    table. *)

open Peering_net

val group :
  ?opts:Wire.session_opts ->
  (Prefix.t * Attrs.t) list ->
  Message.update list
(** Pack announcements into the fewest UPDATEs: prefixes with equal
    attributes share a message, split when the encoded size would
    exceed the 4096-byte limit. Prefix order within a group is
    preserved. *)

val group_withdrawals : ?opts:Wire.session_opts -> Prefix.t list -> Message.update list
(** Pack withdrawals, splitting at the size limit. *)

val message_count : ?opts:Wire.session_opts -> (Prefix.t * Attrs.t) list -> int
(** [List.length (group l)] without materialising the messages. *)
