(** BGP AS_PATH attribute (RFC 4271 §4.3, segments per §5.1.2).

    Paths are lists of segments; an [Seq] segment contributes its
    length to path length, a [Set] segment contributes 1. PEERING's mux
    strips private ASNs from client paths before they reach real peers
    (paper §3), which is {!strip_private} here. *)

open Peering_net

type segment =
  | Seq of Asn.t list  (** AS_SEQUENCE: ordered traversal *)
  | Set of Asn.t list  (** AS_SET: unordered aggregate *)

type t = segment list

val empty : t
(** The empty path (locally originated). *)

val of_asns : Asn.t list -> t
(** [of_asns l] is a single AS_SEQUENCE holding [l] ([empty] if [l]
    is). *)

val to_asns : t -> Asn.t list
(** All ASNs in traversal order (sets flattened in given order). *)

val prepend : Asn.t -> t -> t
(** [prepend a p] adds [a] at the front, extending the leading
    sequence segment or creating one. This is what a router does when
    exporting over eBGP. *)

val prepend_n : Asn.t -> int -> t -> t
(** [prepend_n a n p] prepends [a] [n] times (path prepending for
    traffic engineering). *)

val length : t -> int
(** Path length for the decision process: |sequence| + one per set. *)

val mem : Asn.t -> t -> bool
(** Loop detection: does the path already contain this ASN? *)

val origin_asn : t -> Asn.t option
(** The rightmost ASN — the route's originator. [None] for the empty
    path or when the last segment is an empty or set segment whose
    origin is ambiguous (we return the last ASN of a final sequence,
    or [None] for a final set). *)

val neighbor_asn : t -> Asn.t option
(** The leftmost ASN — the AS the route was most recently exported
    by. *)

val strip_private : t -> t
(** Remove private ASNs everywhere in the path, dropping segments that
    become empty. This is the mux's "present only the public PEERING
    ASN" operation. *)

val aggregate : t -> t -> t
(** [aggregate p q] merges two paths as route aggregation would: the
    longest common leading sequence, then an AS_SET of the remaining
    ASNs (deduplicated, sorted). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
