(** A link-state IGP: shortest-path-first routing over weighted
    intradomain links (OSPF-style), used to resolve BGP next hops
    inside an emulated AS. *)

type t

val create : unit -> t

val add_node : t -> string -> unit
(** Idempotent. *)

val add_link : t -> string -> string -> weight:int -> unit
(** Undirected link. Re-adding replaces the weight. *)

val remove_link : t -> string -> string -> unit

val nodes : t -> string list

val distances : t -> string -> (string * int) list
(** Shortest distances from the given node to every reachable node
    (including itself at 0), sorted by node name. *)

val next_hop : t -> src:string -> dst:string -> string option
(** First hop on a shortest path from [src] to [dst]; ties break by
    node-name order. [None] if unreachable or [src = dst]. *)

val path : t -> src:string -> dst:string -> string list option
(** Full shortest path including both endpoints. *)

val spf : t -> string -> (string, int * string option) Hashtbl.t
(** Raw SPF result from a root: node -> (distance, first hop). *)
