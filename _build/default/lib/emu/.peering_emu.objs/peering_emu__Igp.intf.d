lib/emu/igp.mli: Hashtbl
