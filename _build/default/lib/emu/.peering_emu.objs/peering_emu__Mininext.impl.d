lib/emu/mininext.ml: Array Asn Attrs Country Fib Forwarder Igp Ipv4 List Memory Peering_bgp Peering_dataplane Peering_net Peering_router Peering_sim Peering_topo Policy Prefix Printf Rib Route Router
