lib/emu/igp.ml: Hashtbl Int List Map Option Set String
