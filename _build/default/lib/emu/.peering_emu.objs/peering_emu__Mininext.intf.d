lib/emu/mininext.mli: Asn Country Forwarder Igp Ipv4 Peering_dataplane Peering_net Peering_router Peering_sim Peering_topo Prefix Router
