module Smap = Map.Make (String)

type t = { mutable adj : int Smap.t Smap.t }

let create () = { adj = Smap.empty }

let add_node t n =
  if not (Smap.mem n t.adj) then t.adj <- Smap.add n Smap.empty t.adj

let add_link t a b ~weight =
  if weight <= 0 then invalid_arg "Igp.add_link: weight must be positive";
  add_node t a;
  add_node t b;
  let link x y =
    t.adj <- Smap.add x (Smap.add y weight (Smap.find x t.adj)) t.adj
  in
  link a b;
  link b a

let remove_link t a b =
  let unlink x y =
    match Smap.find_opt x t.adj with
    | Some m -> t.adj <- Smap.add x (Smap.remove y m) t.adj
    | None -> ()
  in
  unlink a b;
  unlink b a

let nodes t = List.map fst (Smap.bindings t.adj)

(* Dijkstra with deterministic tie-breaking: prefer the
   lexicographically smaller first hop on equal distance. *)
let spf t root =
  let result : (string, int * string option) Hashtbl.t = Hashtbl.create 32 in
  if not (Smap.mem root t.adj) then result
  else begin
    let module Pq = Set.Make (struct
      type t = int * string * string option (* dist, node, first hop *)

      let compare (d1, n1, h1) (d2, n2, h2) =
        match Int.compare d1 d2 with
        | 0 -> (
          match String.compare n1 n2 with
          | 0 -> Option.compare String.compare h1 h2
          | c -> c)
        | c -> c
    end) in
    let pq = ref (Pq.singleton (0, root, None)) in
    while not (Pq.is_empty !pq) do
      let ((dist, node, hop) as elt) = Pq.min_elt !pq in
      pq := Pq.remove elt !pq;
      if not (Hashtbl.mem result node) then begin
        Hashtbl.replace result node (dist, hop);
        Smap.iter
          (fun nbr w ->
            if not (Hashtbl.mem result nbr) then begin
              let first_hop =
                match hop with None -> Some nbr | Some h -> Some h
              in
              pq := Pq.add (dist + w, nbr, first_hop) !pq
            end)
          (Smap.find node t.adj)
      end
    done;
    result
  end

let distances t root =
  let r = spf t root in
  Hashtbl.fold (fun n (d, _) acc -> (n, d) :: acc) r []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let next_hop t ~src ~dst =
  if src = dst then None
  else
    match Hashtbl.find_opt (spf t src) dst with
    | Some (_, hop) -> hop
    | None -> None

let path t ~src ~dst =
  if src = dst then Some [ src ]
  else
    let rec go current acc =
      if current = dst then Some (List.rev (dst :: acc))
      else
        match next_hop t ~src:current ~dst with
        | Some h -> go h (current :: acc)
        | None -> None
    in
    go src []
