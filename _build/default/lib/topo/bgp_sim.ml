open Peering_net
open Peering_bgp
module Router = Peering_router.Router
module Engine = Peering_sim.Engine

type t = {
  graph : As_graph.t;
  routers : (int, Router.t) Hashtbl.t;
  mutable started : bool;
}

let relationship_community rel =
  (* 65000:1 customer-learned, :2 peer-learned, :3 provider-learned *)
  let code =
    match rel with
    | Relationship.Customer -> 1
    | Relationship.Peer -> 2
    | Relationship.Provider -> 3
  in
  Community.make 65000 code

(* Import from a neighbor whose role (from my perspective) is [rel]:
   tag the route with the relationship and set the economic
   local-pref. Tags from previous hops are scrubbed first. *)
let import_policy rel =
  let lp =
    match rel with
    | Relationship.Customer -> 300
    | Relationship.Peer -> 200
    | Relationship.Provider -> 100
  in
  Policy.of_entries
    [ { Policy.seq = 10;
        decision = Policy.Permit;
        conds = [];
        actions =
          [ Policy.Clear_communities;
            Policy.Add_community (relationship_community rel);
            Policy.Set_local_pref lp
          ]
      } ]

(* Export to a neighbor with role [rel]: customers get everything;
   peers and providers only get locally-originated and
   customer-learned routes (valley-free). *)
let export_policy rel =
  match rel with
  | Relationship.Customer -> Policy.permit_all
  | Relationship.Peer | Relationship.Provider ->
    Policy.of_entries
      [ { Policy.seq = 10;
          decision = Policy.Deny;
          conds =
            [ Policy.Any
                [ Policy.Has_community
                    (relationship_community Relationship.Peer);
                  Policy.Has_community
                    (relationship_community Relationship.Provider)
                ]
            ];
          actions = []
        };
        { Policy.seq = 20; decision = Policy.Permit; conds = []; actions = [] }
      ]

let router_id_of asn =
  let a = Asn.to_int asn in
  Ipv4.of_octets 10 (a lsr 16 land 0xFF) (a lsr 8 land 0xFF)
    ((a land 0xFF) lor 1)

let build engine ?(mrai = 0.0) graph =
  let routers = Hashtbl.create 64 in
  List.iter
    (fun asn ->
      Hashtbl.replace routers (Asn.to_int asn)
        (Router.create engine ~asn ~router_id:(router_id_of asn) ~mrai ()))
    (As_graph.ases graph);
  let router asn = Hashtbl.find routers (Asn.to_int asn) in
  (* One session per edge; session addresses carved from 172.16/12 by
     a global edge counter. *)
  let edge_counter = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun (b, rel_ab) ->
          if Asn.compare a b < 0 then begin
            incr edge_counter;
            let k = !edge_counter in
            let addr_a =
              Ipv4.of_octets 172 (16 + (k lsr 14 land 0x0F))
                (k lsr 6 land 0xFF)
                ((k land 0x3F) lsl 2 lor 1)
            in
            let addr_b = Ipv4.add addr_a 1 in
            let ra = router a and rb = router b in
            ignore (Router.connect engine (ra, addr_a) (rb, addr_b));
            (* [rel_ab] is b's role from a's perspective; a's import
               from b uses it, a's export to b too. b's side uses the
               inverse. *)
            Router.set_import_policy ra addr_b (import_policy rel_ab);
            Router.set_export_policy ra addr_b (export_policy rel_ab);
            let rel_ba = Relationship.invert rel_ab in
            Router.set_import_policy rb addr_a (import_policy rel_ba);
            Router.set_export_policy rb addr_a (export_policy rel_ba)
          end)
        (As_graph.neighbors graph a))
    (As_graph.ases graph);
  { graph; routers; started = false }

let router t asn =
  match Hashtbl.find_opt t.routers (Asn.to_int asn) with
  | Some r -> r
  | None -> invalid_arg "Bgp_sim.router: unknown AS"

let start t =
  if not t.started then begin
    t.started <- true;
    As_graph.iter_prefixes
      (fun asn prefix -> Router.originate (router t asn) prefix)
      t.graph
  end

let originate t asn prefix = Router.originate (router t asn) prefix
let withdraw t asn prefix = Router.withdraw_network (router t asn) prefix

let route_at t asn prefix = Router.best_route (router t asn) prefix

let as_path_at t asn prefix =
  Option.map
    (fun (r : Route.t) -> As_path.to_asns r.Route.attrs.Attrs.as_path)
    (route_at t asn prefix)

let reachable_count t prefix =
  Hashtbl.fold
    (fun _ r acc -> if Router.best_route r prefix <> None then acc + 1 else acc)
    t.routers 0

let total_updates t =
  Hashtbl.fold (fun _ r acc -> acc + Router.updates_received r) t.routers 0

(* Keepalive timers keep the event queue non-empty forever, so
   quiescence is detected on the control plane: no router received an
   UPDATE for three consecutive steps. *)
let converged t engine ?(step = 1.0) ?(timeout = 600.0) () =
  let deadline = Engine.now engine +. timeout in
  let rec go quiet last =
    if quiet >= 3 then true
    else if Engine.now engine >= deadline then false
    else begin
      Engine.run_for engine step;
      let cur = total_updates t in
      if cur = last then go (quiet + 1) cur else go 0 cur
    end
  in
  go 0 (total_updates t)
