open Peering_net
module Rng = Peering_sim.Rng

type params = {
  seed : int;
  n_tier1 : int;
  n_large_transit : int;
  n_small_transit : int;
  n_stub : int;
  n_content : int;
  target_prefixes : int;
}

let default_params =
  { seed = 1;
    n_tier1 = 12;
    n_large_transit = 40;
    n_small_transit = 300;
    n_stub = 3000;
    n_content = 60;
    target_prefixes = 30_000
  }

let paper_scale_params =
  { seed = 1;
    n_tier1 = 13;
    n_large_transit = 250;
    n_small_transit = 5_000;
    n_stub = 40_000;
    n_content = 400;
    target_prefixes = 500_000
  }

type world = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  large_transit : Asn.t list;
  small_transit : Asn.t list;
  stubs : Asn.t list;
  content : Asn.t list;
}

(* Sequential /24 allocator over the 16.0.0.0/4 region (1M blocks). *)
type cursor = { mutable next : int }

let block_base = 16 lsl 24 (* 16.0.0.0 as /24 index space base, in addresses *)

let next_block cur =
  let addr = block_base + (cur.next lsl 8) in
  cur.next <- cur.next + 1;
  if addr land 0xF0000000 <> 0x10000000 then
    failwith "Gen: prefix space exhausted";
  Prefix.make (Ipv4.of_int addr) 24

let originate_n graph cur asn n =
  for _ = 1 to n do
    As_graph.originate graph asn (next_block cur)
  done

(* Relative prefix weight by AS kind; scaled to hit target_prefixes. *)
let weight_of_kind rng = function
  | As_graph.Tier1 -> 30 + Rng.int rng 20
  | As_graph.Large_transit -> 12 + Rng.int rng 18
  | As_graph.Small_transit -> 4 + Rng.int rng 8
  | As_graph.Stub -> 1 + Rng.int rng 3
  | As_graph.Content -> 15 + Rng.int rng 30
  | As_graph.Enterprise -> 1

let country_for rng kind =
  let n = Array.length Country.pool in
  match kind with
  | As_graph.Tier1 | As_graph.Large_transit ->
    (* Big networks concentrate in the first dozen countries. *)
    Country.pool.(Rng.int rng (min 12 n))
  | As_graph.Content -> Country.pool.(Rng.int rng (min 20 n))
  | As_graph.Small_transit | As_graph.Stub | As_graph.Enterprise ->
    (* Zipf-ish spread across the whole pool. *)
    let z = Rng.zipf rng ~n ~s:1.35 in
    Country.pool.(z - 1)

let generate p =
  let rng = Rng.create p.seed in
  let graph = As_graph.create () in
  let next_asn = ref 0 in
  let fresh kind name_prefix =
    incr next_asn;
    let asn = Asn.of_int !next_asn in
    let country = country_for rng kind in
    As_graph.add_as graph
      ~name:(Printf.sprintf "%s-%d" name_prefix !next_asn)
      ~country ~kind asn;
    asn
  in
  let tier1 = List.init p.n_tier1 (fun _ -> fresh As_graph.Tier1 "T1") in
  let large =
    List.init p.n_large_transit (fun _ -> fresh As_graph.Large_transit "LT")
  in
  let small =
    List.init p.n_small_transit (fun _ -> fresh As_graph.Small_transit "ST")
  in
  let stubs = List.init p.n_stub (fun _ -> fresh As_graph.Stub "STUB") in
  let content = List.init p.n_content (fun _ -> fresh As_graph.Content "CDN") in
  let tier1_a = Array.of_list tier1 in
  let large_a = Array.of_list large in
  let small_a = Array.of_list small in
  (* Tier-1 clique: full mesh of peering. *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> if i < j then As_graph.add_edge graph a Relationship.Peer b)
        tier1)
    tier1;
  let connect_providers asn pool n =
    (* draw [n] distinct providers from [pool] *)
    let chosen = Hashtbl.create 4 in
    let attempts = ref 0 in
    while Hashtbl.length chosen < n && !attempts < 20 do
      incr attempts;
      let c = Rng.choice rng pool in
      if (not (Hashtbl.mem chosen (Asn.to_int c))) && not (Asn.equal c asn)
      then Hashtbl.replace chosen (Asn.to_int c) c
    done;
    Hashtbl.iter
      (fun _ provider ->
        As_graph.add_edge graph provider Relationship.Customer asn)
      chosen
  in
  (* Large transits: 1-3 tier-1 providers; some peer with each other. *)
  List.iter
    (fun a ->
      connect_providers a tier1_a (1 + Rng.int rng 3))
    large;
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Rng.bernoulli rng 0.15 then
            As_graph.add_edge graph a Relationship.Peer b)
        large)
    large;
  (* Customer attachment below the tier-1 clique is Zipf-skewed:
     a handful of transit networks attract most customers, producing
     the heavy-tailed customer-cone distribution of the real Internet
     (a few transit ASes with cones of tens of thousands of prefixes,
     a long tail of tiny cones). *)
  let zipf_picker arr s =
    let n = Array.length arr in
    if n = 0 then fun () -> invalid_arg "Gen: empty provider pool"
    else
      let sample = Rng.zipf_sampler ~n ~s in
      fun () -> arr.(sample rng - 1)
  in
  (* The first few large transits are "hypergiants" (the Hurricane
     Electrics of this world): they attract over half of all
     small-transit customers between them, giving them customer cones
     of tens of thousands of prefixes while the rest keep modest
     cones. *)
  let n_hyper = min 6 (Array.length large_a) in
  let pick_large =
    let hyper = Array.sub large_a 0 n_hyper in
    let rest =
      if Array.length large_a > n_hyper then
        Array.sub large_a n_hyper (Array.length large_a - n_hyper)
      else hyper
    in
    let pick_rest = zipf_picker rest 0.7 in
    fun () ->
      if Rng.bernoulli rng 0.7 then Rng.choice rng hyper else pick_rest ()
  in
  (* Small transits: providers among large transit (occasionally tier-1),
     chosen preferentially. *)
  List.iter
    (fun a ->
      if Rng.bernoulli rng 0.1 then connect_providers a tier1_a 1
      else begin
        let n = 1 + Rng.int rng 2 in
        let chosen = Hashtbl.create 4 in
        let attempts = ref 0 in
        while Hashtbl.length chosen < n && !attempts < 20 do
          incr attempts;
          let c = pick_large () in
          if not (Asn.equal c a) then
            Hashtbl.replace chosen (Asn.to_int c) c
        done;
        Hashtbl.iter
          (fun _ p -> As_graph.add_edge graph p Relationship.Customer a)
          chosen
      end)
    small;
  (* Sparse peering among small transits (regional meshes). *)
  let n_small = Array.length small_a in
  if n_small > 1 then begin
    let extra = n_small / 2 in
    for _ = 1 to extra do
      let a = Rng.choice rng small_a and b = Rng.choice rng small_a in
      if
        (not (Asn.equal a b))
        && As_graph.relationship graph a b = None
      then As_graph.add_edge graph a Relationship.Peer b
    done
  end;
  (* Stubs: 1-2 providers among small (mostly) or large transit, also
     preferentially attached. *)
  let pick_small =
    if Array.length small_a > 0 then zipf_picker small_a 0.7
    else fun () -> Rng.choice rng large_a
  in
  List.iter
    (fun a ->
      let n = 1 + if Rng.bernoulli rng 0.3 then 1 else 0 in
      if Rng.bernoulli rng 0.85 && Array.length small_a > 0 then begin
        let chosen = Hashtbl.create 4 in
        let attempts = ref 0 in
        while Hashtbl.length chosen < n && !attempts < 20 do
          incr attempts;
          let c = pick_small () in
          if not (Asn.equal c a) then Hashtbl.replace chosen (Asn.to_int c) c
        done;
        Hashtbl.iter
          (fun _ p -> As_graph.add_edge graph p Relationship.Customer a)
          chosen
      end
      else connect_providers a large_a n)
    stubs;
  (* Content networks: multihomed to 2-4 providers. *)
  List.iter
    (fun a ->
      let pool = if Rng.bernoulli rng 0.5 then tier1_a else large_a in
      connect_providers a pool (2 + Rng.int rng 3))
    content;
  (* Prefix origination, scaled to the target. *)
  let all = As_graph.ases graph in
  let weights =
    List.map
      (fun asn -> (asn, weight_of_kind rng (As_graph.node_exn graph asn).kind))
      all
  in
  let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let scale = float_of_int p.target_prefixes /. float_of_int total_weight in
  let cur = { next = 0 } in
  List.iter
    (fun (asn, w) ->
      let n = max 1 (int_of_float (Float.round (float_of_int w *. scale))) in
      originate_n graph cur asn n)
    weights;
  { graph; tier1; large_transit = large; small_transit = small; stubs; content }

let all_transit w =
  List.sort Asn.compare (w.tier1 @ w.large_transit @ w.small_transit)
