open Peering_net

type kind =
  | Tier1
  | Large_transit
  | Small_transit
  | Stub
  | Content
  | Enterprise

let kind_to_string = function
  | Tier1 -> "tier1"
  | Large_transit -> "large-transit"
  | Small_transit -> "small-transit"
  | Stub -> "stub"
  | Content -> "content"
  | Enterprise -> "enterprise"

type node = {
  asn : Asn.t;
  name : string;
  country : Country.t;
  kind : kind;
}

type entry = {
  info : node;
  mutable adj : Relationship.t Asn.Map.t;
  mutable prefixes : Prefix.Set.t;
}

type t = {
  nodes : (int, entry) Hashtbl.t;
  mutable origin_index : Asn.t Prefix.Map.t;
  mutable edge_count : int;
  mutable prefix_count : int;
}

let create () =
  { nodes = Hashtbl.create 1024;
    origin_index = Prefix.Map.empty;
    edge_count = 0;
    prefix_count = 0
  }

let entry t asn = Hashtbl.find_opt t.nodes (Asn.to_int asn)

let entry_exn t asn =
  match entry t asn with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "As_graph: unknown %s" (Asn.to_string asn))

let add_as t ?name ?(country = Country.nl) ?(kind = Stub) asn =
  if Hashtbl.mem t.nodes (Asn.to_int asn) then
    invalid_arg (Printf.sprintf "As_graph.add_as: duplicate %s" (Asn.to_string asn));
  let name = Option.value name ~default:(Asn.to_string asn) in
  Hashtbl.replace t.nodes (Asn.to_int asn)
    { info = { asn; name; country; kind };
      adj = Asn.Map.empty;
      prefixes = Prefix.Set.empty
    }

let add_edge t a rel b =
  if Asn.equal a b then invalid_arg "As_graph.add_edge: self loop";
  let ea = entry_exn t a and eb = entry_exn t b in
  if Asn.Map.mem b ea.adj then
    invalid_arg "As_graph.add_edge: duplicate edge";
  ea.adj <- Asn.Map.add b rel ea.adj;
  eb.adj <- Asn.Map.add a (Relationship.invert rel) eb.adj;
  t.edge_count <- t.edge_count + 1

let remove_edge t a b =
  let ea = entry_exn t a and eb = entry_exn t b in
  if Asn.Map.mem b ea.adj then begin
    ea.adj <- Asn.Map.remove b ea.adj;
    eb.adj <- Asn.Map.remove a eb.adj;
    t.edge_count <- t.edge_count - 1
  end

let originate t asn p =
  let e = entry_exn t asn in
  if not (Prefix.Set.mem p e.prefixes) then begin
    e.prefixes <- Prefix.Set.add p e.prefixes;
    t.origin_index <- Prefix.Map.add p asn t.origin_index;
    t.prefix_count <- t.prefix_count + 1
  end

let mem t asn = Hashtbl.mem t.nodes (Asn.to_int asn)
let node t asn = Option.map (fun e -> e.info) (entry t asn)
let node_exn t asn = (entry_exn t asn).info

let neighbors t asn = Asn.Map.bindings (entry_exn t asn).adj

let relationship t a b = Asn.Map.find_opt b (entry_exn t a).adj

let filter_rel t asn want =
  Asn.Map.fold
    (fun n rel acc -> if Relationship.equal rel want then n :: acc else acc)
    (entry_exn t asn).adj []
  |> List.rev

let customers t asn = filter_rel t asn Relationship.Customer
let providers t asn = filter_rel t asn Relationship.Provider
let peers_of t asn = filter_rel t asn Relationship.Peer

let prefixes_of t asn = Prefix.Set.elements (entry_exn t asn).prefixes
let origin_of t p = Prefix.Map.find_opt p t.origin_index

let ases t =
  Hashtbl.fold (fun k _ acc -> Asn.of_int k :: acc) t.nodes []
  |> List.sort Asn.compare

let n_ases t = Hashtbl.length t.nodes
let n_edges t = t.edge_count
let n_prefixes t = t.prefix_count

let fold_ases f t acc =
  List.fold_left (fun acc asn -> f (node_exn t asn) acc) acc (ases t)

let iter_prefixes f t =
  Prefix.Map.iter (fun p asn -> f asn p) t.origin_index
