(** The AS-level Internet graph: ASes with metadata and
    relationship-labelled edges, plus prefix origination. *)

open Peering_net

type kind =
  | Tier1
  | Large_transit
  | Small_transit
  | Stub
  | Content  (** CDN / cloud / content provider *)
  | Enterprise

val kind_to_string : kind -> string

type node = {
  asn : Asn.t;
  name : string;
  country : Country.t;
  kind : kind;
}

type t

val create : unit -> t

val add_as :
  t -> ?name:string -> ?country:Country.t -> ?kind:kind -> Asn.t -> unit
(** Register an AS. Defaults: name ["ASn"], country [Country.nl],
    kind [Stub]. Re-adding an existing ASN raises [Invalid_argument]. *)

val add_edge : t -> Asn.t -> Relationship.t -> Asn.t -> unit
(** [add_edge g a rel b] links [a] and [b]; [rel] is [b]'s role from
    [a]'s perspective ([Customer] = [b] is [a]'s customer). The
    inverse edge is added automatically. Both ASes must exist;
    duplicate edges raise [Invalid_argument]. *)

val remove_edge : t -> Asn.t -> Asn.t -> unit

val originate : t -> Asn.t -> Prefix.t -> unit
(** Record that the AS originates the prefix. *)

val mem : t -> Asn.t -> bool
val node : t -> Asn.t -> node option
val node_exn : t -> Asn.t -> node

val neighbors : t -> Asn.t -> (Asn.t * Relationship.t) list
(** All neighbors with their relationship from this AS's perspective,
    in ascending ASN order. *)

val relationship : t -> Asn.t -> Asn.t -> Relationship.t option
(** [relationship g a b] is [b]'s role from [a]'s perspective. *)

val customers : t -> Asn.t -> Asn.t list
val providers : t -> Asn.t -> Asn.t list
val peers_of : t -> Asn.t -> Asn.t list

val prefixes_of : t -> Asn.t -> Prefix.t list
(** Prefixes originated by this AS, in address order. *)

val origin_of : t -> Prefix.t -> Asn.t option
(** The AS originating exactly this prefix, if any. *)

val ases : t -> Asn.t list
(** All ASNs, ascending. *)

val n_ases : t -> int
val n_edges : t -> int
val n_prefixes : t -> int

val fold_ases : (node -> 'a -> 'a) -> t -> 'a -> 'a

val iter_prefixes : (Asn.t -> Prefix.t -> unit) -> t -> unit
