open Peering_net

type announcement = {
  origin : Asn.t;
  prefix : Prefix.t;
  path_suffix : Asn.t list;
  export_to : Asn.Set.t option;
}

let announce ?(path_suffix = []) ?export_to origin prefix =
  { origin; prefix; path_suffix; export_to }

type route = {
  learned_over : Relationship.t option;
  path : Asn.t list;
  ann_index : int;
}

type result = { table : (int, route) Hashtbl.t }

(* Preference class: origin 3 > customer 2 > peer 1 > provider 0. *)
let class_pref = function
  | None -> 3
  | Some rel -> Relationship.import_preference rel

let better (a : route) (b : route) =
  (* true iff [a] strictly preferred over [b] *)
  let ca = class_pref a.learned_over and cb = class_pref b.learned_over in
  if ca <> cb then ca > cb
  else
    let la = List.length a.path and lb = List.length b.path in
    if la <> lb then la < lb
    else
      let next_hop r = match r.path with x :: _ -> Asn.to_int x | [] -> -1 in
      if next_hop a <> next_hop b then next_hop a < next_hop b
      else a.ann_index < b.ann_index

let propagate ?deny ?(down = Asn.Set.empty) graph announcements =
  let table : (int, route) Hashtbl.t = Hashtbl.create 1024 in
  let anns = Array.of_list announcements in
  let denied asn ann =
    match deny with Some f -> f asn ann | None -> false
  in
  let get asn = Hashtbl.find_opt table (Asn.to_int asn) in
  let is_down asn = Asn.Set.mem asn down in
  (* Offer [r] to [asn]; return true if adopted. *)
  let offer asn (r : route) =
    if is_down asn then false
    else if List.exists (Asn.equal asn) r.path then false (* loop *)
    else if denied asn anns.(r.ann_index) then false
    else
      match get asn with
      | Some cur when not (better r cur) -> false
      | Some _ | None ->
        Hashtbl.replace table (Asn.to_int asn) r;
        true
  in
  (* Seed origins. *)
  List.iteri
    (fun i (ann : announcement) ->
      if As_graph.mem graph ann.origin && not (is_down ann.origin) then
        ignore
          (offer ann.origin
             { learned_over = None; path = ann.path_suffix; ann_index = i }))
    announcements;
  (* Export the route at [u] to neighbor [v] over [rel_uv] ([v]'s role
     from [u]'s perspective); import class at [v] is the inverse. *)
  let try_export u v rel_uv =
    match get u with
    | None -> false
    | Some r ->
      if is_down u then false
      else if not (Relationship.exports_to ~learned_from:r.learned_over rel_uv)
      then false
      else if
        (* Selective announcement: the origin only exports to its
           chosen neighbor set. *)
        r.learned_over = None
        &&
        match anns.(r.ann_index).export_to with
        | Some allowed -> not (Asn.Set.mem v allowed)
        | None -> false
      then false
      else
        let import_rel = Relationship.invert rel_uv in
        offer v { learned_over = Some import_rel; path = u :: r.path;
                  ann_index = r.ann_index }
  in
  (* Phase 1: customer routes climb provider edges to a fixpoint. *)
  let queue = Queue.create () in
  Hashtbl.iter (fun asn _ -> Queue.push (Asn.of_int asn) queue) table;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun p -> if try_export u p Relationship.Provider then Queue.push p queue)
      (As_graph.providers graph u)
  done;
  (* Phase 2: one hop across peer edges. Snapshot holders first so a
     freshly imported peer route is not re-exported to peers. *)
  let holders = Hashtbl.fold (fun asn _ acc -> Asn.of_int asn :: acc) table [] in
  List.iter
    (fun u ->
      List.iter
        (fun v -> ignore (try_export u v Relationship.Peer))
        (As_graph.peers_of graph u))
    (List.sort Asn.compare holders);
  (* Phase 3: descend customer edges to a fixpoint. *)
  let queue = Queue.create () in
  Hashtbl.iter (fun asn _ -> Queue.push (Asn.of_int asn) queue) table;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun c -> if try_export u c Relationship.Customer then Queue.push c queue)
      (As_graph.customers graph u)
  done;
  { table }

let route_at r asn = Hashtbl.find_opt r.table (Asn.to_int asn)
let path_at r asn = Option.map (fun rt -> rt.path) (route_at r asn)

let full_path r asn =
  Option.map (fun rt -> asn :: rt.path) (route_at r asn)

let reachable r =
  Hashtbl.fold (fun asn _ acc -> Asn.of_int asn :: acc) r.table []
  |> List.sort Asn.compare

let reachable_count r = Hashtbl.length r.table

let catchment r =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (rt : route) ->
      let c = Option.value (Hashtbl.find_opt counts rt.ann_index) ~default:0 in
      Hashtbl.replace counts rt.ann_index (c + 1))
    r.table;
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let routes_via r via =
  Hashtbl.fold
    (fun asn (rt : route) acc ->
      if List.exists (Asn.equal via) rt.path && not (Asn.equal (Asn.of_int asn) via)
      then Asn.of_int asn :: acc
      else acc)
    r.table []
  |> List.sort Asn.compare
