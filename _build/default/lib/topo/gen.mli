(** Synthetic Internet generator.

    Builds an AS-level topology with the structural features the
    paper's evaluation depends on: a clique of tier-1 providers, a
    transit hierarchy, a heavy tail of stub ASes, and a small set of
    content/CDN networks that originate a disproportionate share of
    popular prefixes. Everything is deterministic in the seed. *)

open Peering_net

type params = {
  seed : int;
  n_tier1 : int;
  n_large_transit : int;
  n_small_transit : int;
  n_stub : int;
  n_content : int;
  target_prefixes : int;
      (** approximate total prefix count; per-AS counts are scaled so
          the sum lands near this *)
}

val default_params : params
(** A laptop-scale Internet: 12 tier-1s, 40 large transits, 300 small
    transits, 3000 stubs, 60 content networks, ~30000 prefixes. *)

val paper_scale_params : params
(** Scaled towards the real 2014 Internet: ~46K ASes and ~500K
    prefixes. Generation takes a few seconds; used by the E2/E3/F2
    benches. *)

type world = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  large_transit : Asn.t list;
  small_transit : Asn.t list;
  stubs : Asn.t list;
  content : Asn.t list;
}

val generate : params -> world
(** Generate the topology. ASNs are assigned densely from 1. The graph
    is connected: every AS has a provider chain to the tier-1 clique. *)

val all_transit : world -> Asn.t list
(** tier1 @ large @ small, ascending. *)
