type t = Customer | Provider | Peer

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b

let import_preference = function Customer -> 2 | Peer -> 1 | Provider -> 0

let exports_to ~learned_from to_rel =
  match learned_from with
  | None | Some Customer -> true
  | Some Peer | Some Provider -> (
    match to_rel with Customer -> true | Peer | Provider -> false)
