lib/topo/bgp_sim.ml: As_graph As_path Asn Attrs Community Hashtbl Ipv4 List Option Peering_bgp Peering_net Peering_router Peering_sim Policy Relationship Route
