lib/topo/topology_zoo.mli: Country Peering_net
