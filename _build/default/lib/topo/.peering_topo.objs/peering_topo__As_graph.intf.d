lib/topo/as_graph.mli: Asn Country Peering_net Prefix Relationship
