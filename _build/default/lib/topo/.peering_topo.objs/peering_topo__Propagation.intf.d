lib/topo/propagation.mli: As_graph Asn Peering_net Prefix Relationship
