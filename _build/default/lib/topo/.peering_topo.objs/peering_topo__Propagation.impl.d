lib/topo/propagation.ml: Array As_graph Asn Hashtbl Int List Option Peering_net Prefix Queue Relationship
