lib/topo/gen.ml: Array As_graph Asn Country Float Hashtbl Ipv4 List Peering_net Peering_sim Prefix Printf Relationship
