lib/topo/as_graph.ml: Asn Country Hashtbl List Option Peering_net Prefix Printf Relationship
