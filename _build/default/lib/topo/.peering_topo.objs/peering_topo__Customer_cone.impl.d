lib/topo/customer_cone.ml: As_graph Asn Int List Peering_net Prefix
