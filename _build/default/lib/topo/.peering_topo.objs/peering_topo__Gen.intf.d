lib/topo/gen.mli: As_graph Asn Peering_net
