lib/topo/topology_zoo.ml: Array Country Fun Int List Peering_net String
