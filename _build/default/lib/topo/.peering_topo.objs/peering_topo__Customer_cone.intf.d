lib/topo/customer_cone.mli: As_graph Asn Peering_net Prefix
