lib/topo/bgp_sim.mli: As_graph Asn Peering_bgp Peering_net Peering_router Peering_sim Prefix
