open Peering_net

let cone graph asn =
  let visited = ref Asn.Set.empty in
  let rec visit a =
    if not (Asn.Set.mem a !visited) then begin
      visited := Asn.Set.add a !visited;
      List.iter visit (As_graph.customers graph a)
    end
  in
  visit asn;
  !visited

let cone_size graph asn = Asn.Set.cardinal (cone graph asn)

let cone_prefixes graph asn =
  Asn.Set.fold
    (fun a acc ->
      List.fold_left
        (fun acc p -> Prefix.Set.add p acc)
        acc (As_graph.prefixes_of graph a))
    (cone graph asn) Prefix.Set.empty

let rank_all graph =
  let sizes =
    List.map (fun a -> (a, cone_size graph a)) (As_graph.ases graph)
  in
  List.sort
    (fun (a1, s1) (a2, s2) ->
      match Int.compare s2 s1 with 0 -> Asn.compare a1 a2 | c -> c)
    sizes

let top graph n =
  rank_all graph |> List.filteri (fun i _ -> i < n) |> List.map fst
