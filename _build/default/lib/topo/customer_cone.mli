(** Customer cones and AS ranking (CAIDA AS Rank style).

    An AS's customer cone is the set of ASes reachable by following
    only customer links downward — itself, its customers, their
    customers, and so on. The paper ranks ASes by customer-cone size to
    report "we peer with 13 of the 50 largest ASes" (§4.1); peer routes
    a network exports are exactly its cone's prefixes. *)

open Peering_net

val cone : As_graph.t -> Asn.t -> Asn.Set.t
(** The AS's customer cone, including itself. *)

val cone_size : As_graph.t -> Asn.t -> int

val cone_prefixes : As_graph.t -> Asn.t -> Prefix.Set.t
(** All prefixes originated inside the cone — what the AS exports to
    settlement-free peers. *)

val rank_all : As_graph.t -> (Asn.t * int) list
(** Every AS with its cone size, sorted by decreasing size (ties by
    ascending ASN) — position 0 is the Internet's largest network. *)

val top : As_graph.t -> int -> Asn.t list
(** The [n] largest ASes by customer cone. *)
