open Peering_net

type pop = { id : int; city : string; country : Country.t }

type t = {
  name : string;
  pops : pop array;
  links : (int * int) list;
}

let c = Country.of_string_exn

let make_pops l =
  Array.of_list (List.mapi (fun id (city, cc) -> { id; city; country = c cc }) l)

let hurricane_electric =
  { name = "Hurricane Electric";
    pops =
      make_pops
        [ ("Seattle", "US"); ("Fremont", "US"); ("San Jose", "US");
          ("Los Angeles", "US"); ("Phoenix", "US"); ("Las Vegas", "US");
          ("Denver", "US"); ("Dallas", "US"); ("Houston", "US");
          ("Kansas City", "US"); ("Chicago", "US"); ("Minneapolis", "US");
          ("Toronto", "CA"); ("New York", "US"); ("Ashburn", "US");
          ("Atlanta", "US"); ("Miami", "US"); ("London", "GB");
          ("Paris", "FR"); ("Amsterdam", "NL"); ("Frankfurt", "DE");
          ("Zurich", "CH"); ("Stockholm", "SE"); ("Hong Kong", "HK") ];
    links =
      [ (0, 1); (0, 10); (0, 23); (1, 2); (1, 3); (2, 3); (2, 23); (3, 4);
        (4, 5); (4, 7); (5, 6); (6, 9); (7, 8); (7, 15); (8, 16); (9, 10);
        (10, 11); (10, 12); (10, 13); (12, 13); (13, 14); (13, 17); (14, 15);
        (15, 16); (17, 18); (17, 19); (18, 21); (19, 20); (19, 22); (20, 21) ]
  }

let abilene =
  { name = "Abilene";
    pops =
      make_pops
        [ ("Seattle", "US"); ("Sunnyvale", "US"); ("Los Angeles", "US");
          ("Denver", "US"); ("Kansas City", "US"); ("Houston", "US");
          ("Chicago", "US"); ("Indianapolis", "US"); ("Atlanta", "US");
          ("Washington", "US"); ("New York", "US") ];
    links =
      [ (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 7);
        (5, 8); (6, 7); (6, 10); (7, 8); (8, 9); (9, 10) ]
  }

let find_pop t city =
  let lc = String.lowercase_ascii city in
  Array.find_opt (fun p -> String.lowercase_ascii p.city = lc) t.pops

let neighbors t id =
  List.filter_map
    (fun (a, b) ->
      if a = id then Some b else if b = id then Some a else None)
    t.links
  |> List.sort Int.compare

let n_pops t = Array.length t.pops
let n_links t = List.length t.links

let is_connected t =
  let n = n_pops t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit (neighbors t i)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end
