(** Protocol-level interdomain simulation: one real
    {!Peering_router.Router} per AS, eBGP sessions on every graph
    edge, Gao–Rexford economics expressed as import/export policies.

    This is the slow, faithful counterpart of {!Propagation}: routes
    converge by actual BGP message exchange (wire-encoded UPDATEs,
    session FSMs, timers) instead of graph traversal. It only scales
    to tens-to-hundreds of ASes, which is exactly what makes it useful:

    - cross-validation — on any topology both engines must agree on
      reachability and path lengths (tested by property tests);
    - convergence dynamics — path hunting, MRAI effects and update
      counts are visible here and invisible to the algorithmic engine. *)

open Peering_net

type t

val build :
  Peering_sim.Engine.t ->
  ?mrai:float ->
  As_graph.t ->
  t
(** Instantiate routers and sessions for every AS and edge of the
    graph; Gao–Rexford policies are installed from the edge labels
    (customer routes local-pref 300, peers 200, providers 100; exports
    filtered valley-free). [mrai] throttles per-neighbor advertisement
    bursts (default none). Drive the engine to let sessions
    establish. *)

val start : t -> unit
(** Originate every AS's prefixes (from the graph) and let them
    propagate. Call after sessions establish; drive the engine to
    converge. *)

val originate : t -> Asn.t -> Prefix.t -> unit
val withdraw : t -> Asn.t -> Prefix.t -> unit

val router : t -> Asn.t -> Peering_router.Router.t

val route_at : t -> Asn.t -> Prefix.t -> Peering_bgp.Route.t option

val as_path_at : t -> Asn.t -> Prefix.t -> Asn.t list option
(** The AS path the router selected (most recent hop first). *)

val reachable_count : t -> Prefix.t -> int
(** Routers holding a route for the prefix (including the
    originator). *)

val total_updates : t -> int
(** Sum of UPDATE messages received by all routers — the convergence
    cost measure of the Labovitz-style experiments. *)

val converged :
  t -> Peering_sim.Engine.t -> ?step:float -> ?timeout:float -> unit -> bool
(** Drive the engine in [step]-second slices (default 1.0) until the
    control plane quiesces (no UPDATE received for three consecutive
    steps) or [timeout] virtual seconds pass (default 600). Returns
    [false] on timeout. *)
