(** Valley-free BGP route propagation over an AS graph.

    Computes, for one prefix announced by one or more origins (anycast
    and hijack scenarios announce from several), the route every AS
    selects under the Gao–Rexford model: prefer customer routes over
    peer routes over provider routes, then shortest AS path, then
    lowest next-hop ASN. Propagation follows the classic three phases —
    customer routes climb provider links, cross one peer link, then
    descend to customers.

    This engine is what stands in for "the live Internet" reacting to
    PEERING announcements: route injection, selective announcements,
    AS-path poisoning (LIFEGUARD), prefix hijacks, and anycast
    catchments are all expressed as [announcement]s. *)

open Peering_net

type announcement = {
  origin : Asn.t;  (** the AS injecting the route *)
  prefix : Prefix.t;
  path_suffix : Asn.t list;
      (** fake path appended after the origin; poisoning inserts ASNs
          here so they self-loop-reject the route *)
  export_to : Asn.Set.t option;
      (** when [Some s], the origin announces only to neighbors in
          [s] — PEERING's selective-announcement control. [None] =
          export to all neighbors (subject to Gao–Rexford). *)
}

val announce :
  ?path_suffix:Asn.t list ->
  ?export_to:Asn.Set.t ->
  Asn.t ->
  Prefix.t ->
  announcement

type route = {
  learned_over : Relationship.t option;
      (** relationship class the route was imported over;
          [None] = this AS originates it *)
  path : Asn.t list;
      (** AS path excluding self: next hop first, then onwards to the
          origin, then any poisoned suffix *)
  ann_index : int;  (** which announcement this route derives from *)
}

type result

val propagate :
  ?deny:(Asn.t -> announcement -> bool) ->
  ?down:Asn.Set.t ->
  As_graph.t ->
  announcement list ->
  result
(** Run propagation. [deny asn ann] lets an AS refuse a specific
    announcement on import (modelling filters); ASes in [down] neither
    import nor export anything (modelling failures). Announcements must
    all carry the same prefix or covering/covered prefixes; each is
    propagated independently and ASes pick their single best. *)

val route_at : result -> Asn.t -> route option
(** The route the AS selected, [None] if unreachable. *)

val path_at : result -> Asn.t -> Asn.t list option

val full_path : result -> Asn.t -> Asn.t list option
(** [full_path r asn] is [asn :: path], i.e. the forwarding AS-level
    path starting at [asn], for ASes with a route. *)

val reachable : result -> Asn.t list
(** ASes holding a route, ascending. *)

val reachable_count : result -> int

val catchment : result -> (int * int) list
(** For multi-origin announcements: [(ann_index, count)] pairs giving
    how many ASes selected a route derived from each announcement
    (anycast catchment / hijack impact), ascending by index. ASes with
    no route are not counted. *)

val routes_via : result -> Asn.t -> Asn.t list
(** ASes whose selected path traverses the given AS (inclusive of
    next-hop position, exclusive of themselves). Useful for
    interception experiments. *)
