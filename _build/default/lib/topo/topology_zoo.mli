(** Embedded PoP-level backbone topologies in the style of the
    Internet Topology Zoo.

    The paper's §4.2 emulates Hurricane Electric's 24-PoP global
    backbone from Topology Zoo data. The Zoo's GML files are not
    shippable here, so we embed a hand-transcribed approximation of
    the HE graph (same scale: 24 PoPs, ~30 links, US ring plus
    European and Asian extensions). The Amsterdam PoP — the one §4.2
    connects to AMS-IX — is present by construction. *)

open Peering_net

type pop = {
  id : int;
  city : string;
  country : Country.t;
}

type t = {
  name : string;
  pops : pop array;
  links : (int * int) list;  (** undirected, by pop id *)
}

val hurricane_electric : t
(** The 24-PoP HE backbone approximation. *)

val abilene : t
(** The 11-PoP Abilene/Internet2 research backbone — a second,
    smaller topology for tests and examples. *)

val find_pop : t -> string -> pop option
(** Look up a PoP by (case-insensitive) city name. *)

val neighbors : t -> int -> int list
(** Adjacent PoP ids, ascending. *)

val n_pops : t -> int
val n_links : t -> int

val is_connected : t -> bool
(** Sanity: the link set spans all PoPs. *)
