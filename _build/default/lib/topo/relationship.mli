(** AS business relationships (Gao–Rexford model).

    An edge label is directional: [Customer] means "the neighbor is my
    customer". Transit flows provider→customer; settlement-free peering
    exchanges only own/customer routes. *)

type t =
  | Customer  (** neighbor pays me; I give them full transit *)
  | Provider  (** I pay the neighbor *)
  | Peer  (** settlement-free *)

val invert : t -> t
(** The same edge seen from the other end. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val import_preference : t -> int
(** Economic preference for routes by the relationship they were
    learned over: customer (2) > peer (1) > provider (0). Higher is
    better. *)

val exports_to : learned_from:t option -> t -> bool
(** [exports_to ~learned_from to_rel]: may a route learned over
    [learned_from] ([None] = locally originated) be exported to a
    neighbor with relationship [to_rel]? Gao–Rexford: own and
    customer-learned routes go to everyone; peer- and provider-learned
    routes go only to customers. *)
