(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float -> float list -> float
(** [percentile p l] for [p] in [0, 100], by linear interpolation
    between order statistics. Raises [Invalid_argument] on an empty
    list or out-of-range [p]. *)

val median : float list -> float

val histogram : bins:int -> float list -> (float * float * int) list
(** Equal-width bins over the sample range:
    [(lo, hi, count)] per bin, ascending. Raises on empty input or
    [bins < 1]. The last bin is inclusive of the maximum. *)

val cdf_points : float list -> (float * float) list
(** The empirical CDF as [(value, fraction <= value)] pairs, one per
    distinct sorted sample — the form the paper's figures plot. *)

val summary : float list -> string
(** "n=… mean=… p50=… p90=… max=…" one-liner; "n=0" when empty. *)
