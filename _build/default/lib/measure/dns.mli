(** A miniature DNS: authoritative A records with lookups.

    Stands in for the live lookups of §4.1's Alexa experiment ("we ran
    DNS lookups for these domain names from our AMS-IX server"). *)

open Peering_net

type t

val create : unit -> t

val add_a : t -> string -> Ipv4.t -> unit
(** Add an A record (duplicates ignored). Names are case-insensitive. *)

val resolve : t -> string -> Ipv4.t list
(** All A records for the name, in insertion order; [] if unknown. *)

val resolve_one : t -> string -> Ipv4.t option
(** First A record. *)

val names : t -> string list
(** All names with records, sorted. *)

val n_records : t -> int
