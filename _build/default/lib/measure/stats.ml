let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) l) in
    sqrt var

let percentile p l =
  if l = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list l in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let median l = percentile 50.0 l

let histogram ~bins l =
  if l = [] then invalid_arg "Stats.histogram: empty sample";
  if bins < 1 then invalid_arg "Stats.histogram: bins < 1";
  let lo = List.fold_left Float.min infinity l in
  let hi = List.fold_left Float.max neg_infinity l in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    l;
  List.init bins (fun i ->
      ( lo +. (float_of_int i *. width),
        lo +. (float_of_int (i + 1) *. width),
        counts.(i) ))

let cdf_points l =
  let a = Array.of_list l in
  Array.sort Float.compare a;
  let n = Array.length a in
  let points = ref [] in
  Array.iteri
    (fun i x ->
      let frac = float_of_int (i + 1) /. float_of_int n in
      match !points with
      | (v, _) :: rest when v = x -> points := (x, frac) :: rest
      | _ -> points := (x, frac) :: !points)
    a;
  List.rev !points

let summary l =
  match l with
  | [] -> "n=0"
  | _ ->
    Printf.sprintf "n=%d mean=%.2f p50=%.2f p90=%.2f max=%.2f"
      (List.length l) (mean l) (median l) (percentile 90.0 l)
      (List.fold_left Float.max neg_infinity l)
