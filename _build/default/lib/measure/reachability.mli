(** Peer-route reachability analysis (§4.1).

    "Which destinations can we reach via peerings?" A settlement-free
    peer exports exactly its customer cone, so the peer-learned table
    at an IXP is the union of the peers' cone prefixes. This module
    materialises that table and answers the paper's counting
    questions. *)

open Peering_net

type t

val peer_routes :
  ?selective:int -> Peering_topo.Gen.world -> peers:Asn.t list -> t
(** The table of prefixes learned from the given peers (union of
    customer-cone prefixes, LPM-indexed).

    With [selective] (a seed), transit peers export only part of their
    customer cone — the dominant behaviour at real route servers,
    where customers opt in to multilateral propagation: tier-1/large
    transit export ~35% of cone prefixes, small transit ~70%; every
    peer always exports its own prefixes, and content networks export
    everything (they want the inbound traffic). The per-(peer, prefix)
    decision is a deterministic hash of the seed, so repeated calls
    and {!routes_per_peer} agree. *)

val n_prefixes : t -> int

val covers_addr : t -> Ipv4.t -> bool
(** Longest-prefix-match test: is there a peer route for this
    address? *)

val covers_prefix : t -> Prefix.t -> bool
(** Exact or covering match for a whole prefix. *)

val fraction_of_internet : t -> Peering_topo.Gen.world -> float
(** Peer-route prefixes over all prefixes in the world. *)

val peers_in_top : Peering_topo.Gen.world -> peers:Asn.t list -> int -> int
(** How many of the top-[n] ASes (by customer cone) are in [peers]. *)

val peer_countries : Peering_topo.Gen.world -> peers:Asn.t list -> Country.Set.t

val routes_per_peer :
  ?selective:int ->
  Peering_topo.Gen.world ->
  peers:Asn.t list ->
  (Asn.t * int) list
(** Per-peer count of exported prefixes (cone prefixes, after the same
    [selective] export model), descending — reproduces "only our 5
    largest peers give us more than 10K routes, and 307 give us fewer
    than 100 routes". *)
