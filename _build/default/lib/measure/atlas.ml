open Peering_net
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph

type probe = {
  probe_id : int;
  host_asn : Asn.t;
  country : Country.t;
}

type t = { probe_list : probe list }

let per_hop_rtt_ms = 15.0

let deploy ~rng ~(world : Gen.world) ~n =
  let stubs = Array.of_list world.Gen.stubs in
  Rng.shuffle rng stubs;
  let n = min n (Array.length stubs) in
  let probe_list =
    List.init n (fun i ->
        let host_asn = stubs.(i) in
        { probe_id = i + 1;
          host_asn;
          country = (As_graph.node_exn world.Gen.graph host_asn).As_graph.country
        })
  in
  { probe_list }

let probes t = t.probe_list
let n_probes t = List.length t.probe_list

let countries t =
  List.fold_left
    (fun acc p -> Country.Set.add p.country acc)
    Country.Set.empty t.probe_list

let ping t ~path_of =
  List.map
    (fun p ->
      match path_of p.host_asn with
      | Some path ->
        (* path includes the probe's own AS; hops = length - 1 *)
        let hops = max 1 (List.length path - 1) in
        (p, Some (float_of_int hops *. per_hop_rtt_ms))
      | None -> (p, None))
    t.probe_list

let traceroute _t ~path_of probe = path_of probe.host_asn

let reachability t ~path_of =
  let up =
    List.length
      (List.filter (fun p -> path_of p.host_asn <> None) t.probe_list)
  in
  float_of_int up /. float_of_int (max 1 (n_probes t))

let rtt_summary t ~path_of =
  let rtts = List.filter_map snd (ping t ~path_of) in
  Stats.summary rtts
