(** Synthetic popular-web workload for the §4.1 Alexa experiment.

    Models the 2014 web: a ranked list of top sites, each homepage
    pulling ~100 embedded resources; resources concentrate on a few
    thousand distinct FQDNs, which in turn concentrate on CDN and
    cloud networks (the paper cites YouTube+Netflix alone at 47% of
    North American traffic). Hosting addresses are real prefixes of
    the generated Internet, so reachability can be evaluated against
    peer routes. *)

open Peering_net

type site = {
  rank : int;  (** 1-based Alexa-style rank *)
  fqdn : string;
  addr : Ipv4.t;  (** homepage A record *)
  resources : string list;  (** embedded-resource FQDNs (with repeats) *)
}

type t = {
  sites : site list;
  dns : Dns.t;
  hosted_by : (string, Asn.t) Hashtbl.t;  (** FQDN -> hosting AS *)
}

type params = {
  n_sites : int;  (** 500 *)
  mean_resources : float;  (** ~100 per page *)
  n_resource_fqdns : int;  (** pool of distinct resource hosts, ~4200 *)
  cdn_share : float;
      (** probability a resource FQDN is hosted on a Content-kind AS *)
  site_cdn_share : float;
      (** same for site homepages — lower: homepages sit on origin
          infrastructure more often than embedded resources do *)
}

val default_params : params

val generate :
  ?params:params ->
  rng:Peering_sim.Rng.t ->
  Peering_topo.Gen.world ->
  t
(** Build the workload over a generated Internet. Every FQDN resolves
    in [dns] to an address inside a prefix its hosting AS originates. *)

val total_resources : t -> int
val distinct_resource_fqdns : t -> string list
val distinct_resource_addrs : t -> Ipv4.t list
val hosting_asn : t -> string -> Asn.t option
