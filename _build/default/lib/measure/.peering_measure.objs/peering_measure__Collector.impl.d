lib/measure/collector.ml: Asn List Peering_net Prefix
