lib/measure/reachability.mli: Asn Country Ipv4 Peering_net Peering_topo Prefix
