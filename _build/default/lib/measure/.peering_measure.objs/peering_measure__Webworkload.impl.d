lib/measure/webworkload.ml: Array Asn Dns Hashtbl Ipv4 List Peering_net Peering_sim Peering_topo Prefix Printf String
