lib/measure/dns.ml: Hashtbl Ipv4 List Peering_net String
