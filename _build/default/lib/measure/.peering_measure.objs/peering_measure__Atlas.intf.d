lib/measure/atlas.mli: Asn Country Peering_net Peering_sim Peering_topo
