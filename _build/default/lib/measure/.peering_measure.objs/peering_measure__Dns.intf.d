lib/measure/dns.mli: Ipv4 Peering_net
