lib/measure/stats.ml: Array Float List Printf
