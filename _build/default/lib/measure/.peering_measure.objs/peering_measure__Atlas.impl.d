lib/measure/atlas.ml: Array Asn Country List Peering_net Peering_sim Peering_topo Stats
