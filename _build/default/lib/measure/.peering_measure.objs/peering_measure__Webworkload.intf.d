lib/measure/webworkload.mli: Asn Dns Hashtbl Ipv4 Peering_net Peering_sim Peering_topo
