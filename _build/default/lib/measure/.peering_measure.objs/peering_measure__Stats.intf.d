lib/measure/stats.mli:
