lib/measure/collector.mli: Asn Peering_net Prefix
