lib/measure/reachability.ml: Asn Country Float Int List Peering_net Peering_sim Peering_topo Prefix Prefix_trie
