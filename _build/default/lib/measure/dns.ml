open Peering_net

type t = { zones : (string, Ipv4.t list ref) Hashtbl.t }

let create () = { zones = Hashtbl.create 256 }

let canon name = String.lowercase_ascii name

let add_a t name addr =
  let name = canon name in
  match Hashtbl.find_opt t.zones name with
  | Some l -> if not (List.exists (Ipv4.equal addr) !l) then l := !l @ [ addr ]
  | None -> Hashtbl.replace t.zones name (ref [ addr ])

let resolve t name =
  match Hashtbl.find_opt t.zones (canon name) with
  | Some l -> !l
  | None -> []

let resolve_one t name =
  match resolve t name with a :: _ -> Some a | [] -> None

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.zones [] |> List.sort String.compare

let n_records t =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.zones 0
