open Peering_net

type kind = Announce | Withdraw

type entry = {
  time : float;
  peer : Asn.t;
  prefix : Prefix.t;
  path : Asn.t list;
  kind : kind;
}

type t = { mutable log : entry list (* newest first *) }

let create () = { log = [] }

let record t ~time ~peer ~prefix ~path kind =
  t.log <- { time; peer; prefix; path; kind } :: t.log

let entries t = List.rev t.log

let for_prefix t prefix =
  List.filter (fun e -> Prefix.equal e.prefix prefix) (entries t)

let churn t prefix = List.length (for_prefix t prefix)

let last_path t prefix =
  let rec find = function
    | [] -> None
    | e :: rest ->
      if Prefix.equal e.prefix prefix then
        match e.kind with
        | Announce -> Some e.path
        | Withdraw -> None
      else find rest
  in
  find t.log

let n_entries t = List.length t.log
let clear t = t.log <- []
