(** A route collector in the RouteViews/RIPE-RIS mould: a passive
    archive of control-plane events, queryable by prefix and peer.

    PEERING "automatically collect[s] regular control and data plane
    measurements towards PEERING prefixes" (§3); the testbed records
    every announcement its servers see into one of these. *)

open Peering_net

type kind = Announce | Withdraw

type entry = {
  time : float;
  peer : Asn.t;  (** AS the event was heard from *)
  prefix : Prefix.t;
  path : Asn.t list;  (** empty for withdrawals *)
  kind : kind;
}

type t

val create : unit -> t

val record :
  t -> time:float -> peer:Asn.t -> prefix:Prefix.t -> path:Asn.t list ->
  kind -> unit

val entries : t -> entry list
(** All events, oldest first. *)

val for_prefix : t -> Prefix.t -> entry list

val churn : t -> Prefix.t -> int
(** Number of events (announcements + withdrawals) for the prefix —
    the dampening ablation's measurement. *)

val last_path : t -> Prefix.t -> Asn.t list option
(** Path of the most recent announcement not followed by a
    withdrawal, if any. *)

val n_entries : t -> int
val clear : t -> unit
