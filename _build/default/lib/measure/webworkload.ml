open Peering_net
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph

type site = {
  rank : int;
  fqdn : string;
  addr : Ipv4.t;
  resources : string list;
}

type t = {
  sites : site list;
  dns : Dns.t;
  hosted_by : (string, Asn.t) Hashtbl.t;
}

type params = {
  n_sites : int;
  mean_resources : float;
  n_resource_fqdns : int;
  cdn_share : float;
  site_cdn_share : float;
}

let default_params =
  { n_sites = 500;
    mean_resources = 99.5;
    n_resource_fqdns = 4_200;
    cdn_share = 0.5;
    site_cdn_share = 0.18
  }

(* Pick a host address: an AS of the wanted kind, one of its prefixes,
   a host inside it. Content ASes are picked Zipf-style so a few CDNs
   dominate, mirroring real traffic concentration. *)
let pick_host rng (world : Gen.world) ~prefer_cdn =
  let graph = world.Gen.graph in
  let from_pool pool_arr zipf =
    let n = Array.length pool_arr in
    let idx = if zipf then Rng.zipf rng ~n ~s:1.0 - 1 else Rng.int rng n in
    pool_arr.(idx)
  in
  let content_arr = Array.of_list world.Gen.content in
  let other_arr =
    Array.of_list (world.Gen.stubs @ world.Gen.small_transit)
  in
  let asn =
    if prefer_cdn && Array.length content_arr > 0 then
      from_pool content_arr true
    else from_pool other_arr false
  in
  match As_graph.prefixes_of graph asn with
  | [] -> None
  | prefixes ->
    let parr = Array.of_list prefixes in
    let p = parr.(Rng.int rng (Array.length parr)) in
    let host_offset = 1 + Rng.int rng (max 1 (Prefix.size p - 2)) in
    Some (asn, Ipv4.add (Prefix.addr p) host_offset)

let generate ?(params = default_params) ~rng (world : Gen.world) =
  let dns = Dns.create () in
  let hosted_by = Hashtbl.create 1024 in
  (* CDN frontends serve many names from one address: FQDNs landing on
     the same hosting AS reuse one of its existing server addresses
     with some probability, so distinct IPs < distinct FQDNs (the paper
     saw 2,757 IPs for 4,182 FQDNs). *)
  let server_cache : (int, Ipv4.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let host_address asn fresh_addr =
    let cache =
      match Hashtbl.find_opt server_cache (Asn.to_int asn) with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.replace server_cache (Asn.to_int asn) c;
        c
    in
    match !cache with
    | existing :: _ when Rng.bernoulli rng 0.75 ->
      let arr = Array.of_list !cache in
      ignore existing;
      Rng.choice rng arr
    | _ ->
      cache := fresh_addr :: !cache;
      fresh_addr
  in
  (* Resource FQDN pool: pre-assign each a hosting AS and address. *)
  let pool =
    Array.init params.n_resource_fqdns (fun i ->
        let fqdn = Printf.sprintf "r%d.cdn-host.example" i in
        let prefer_cdn = Rng.bernoulli rng params.cdn_share in
        match pick_host rng world ~prefer_cdn with
        | Some (asn, addr) ->
          let addr = host_address asn addr in
          Dns.add_a dns fqdn addr;
          Hashtbl.replace hosted_by fqdn asn;
          fqdn
        | None -> fqdn)
  in
  (* Zipf sampler over the pool: popular CDNs host many resources. *)
  let sample_fqdn = Rng.zipf_sampler ~n:params.n_resource_fqdns ~s:0.9 in
  let sites =
    List.init params.n_sites (fun i ->
        let rank = i + 1 in
        let fqdn = Printf.sprintf "site%d.example" rank in
        let prefer_cdn = Rng.bernoulli rng params.site_cdn_share in
        let asn, addr =
          match pick_host rng world ~prefer_cdn with
          | Some x -> x
          | None -> (List.hd world.Gen.tier1, Ipv4.of_octets 192 0 2 1)
        in
        Dns.add_a dns fqdn addr;
        Hashtbl.replace hosted_by fqdn asn;
        (* Resource count: exponential around the mean, at least 5. *)
        let n_res =
          max 5 (int_of_float (Rng.exponential rng ~mean:params.mean_resources))
        in
        let resources =
          List.init n_res (fun _ -> pool.(sample_fqdn rng - 1))
        in
        { rank; fqdn; addr; resources })
  in
  { sites; dns; hosted_by }

let total_resources t =
  List.fold_left (fun acc s -> acc + List.length s.resources) 0 t.sites

let distinct_resource_fqdns t =
  let set = Hashtbl.create 1024 in
  List.iter
    (fun s -> List.iter (fun r -> Hashtbl.replace set r ()) s.resources)
    t.sites;
  Hashtbl.fold (fun k () acc -> k :: acc) set [] |> List.sort String.compare

let distinct_resource_addrs t =
  let set = Hashtbl.create 1024 in
  List.iter
    (fun fqdn ->
      List.iter
        (fun a -> Hashtbl.replace set (Ipv4.to_int a) a)
        (Dns.resolve t.dns fqdn))
    (distinct_resource_fqdns t);
  Hashtbl.fold (fun _ a acc -> a :: acc) set [] |> List.sort Ipv4.compare

let hosting_asn t fqdn = Hashtbl.find_opt t.hosted_by fqdn
