open Peering_net
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph
module Customer_cone = Peering_topo.Customer_cone

type t = { table : unit Prefix_trie.t; count : int }

(* Deterministic per-(seed, peer, prefix) coin flip in [0, 1). *)
let hash01 seed peer prefix =
  let h =
    (seed * 0x9E3779B1)
    lxor (Asn.to_int peer * 0x85EBCA77)
    lxor (Prefix.hash prefix * 0xC2B2AE3D)
  in
  let r = Peering_sim.Rng.create h in
  Peering_sim.Rng.float r 1.0

(* How much of its customer cone a peer propagates multilaterally:
   customers must opt in to route-server propagation, so big transit
   networks export a modest fraction (with an absolute floor — roughly
   the customers who asked), small regional transits most of theirs,
   and everyone always exports their own prefixes. *)
let export_fraction kind ~cone_size =
  match kind with
  | As_graph.Tier1 | As_graph.Large_transit ->
    Float.max 0.2 (Float.min 1.0 (800.0 /. float_of_int (max 1 cone_size)))
  | As_graph.Small_transit -> 0.7
  | As_graph.Stub | As_graph.Content | As_graph.Enterprise -> 1.0

(* The prefixes [peer] exports over settlement-free peering: its
   customer cone, thinned by the selective-export model when
   requested. Own prefixes always go out. *)
let exported_prefixes ?selective (world : Gen.world) peer =
  let cone = Customer_cone.cone_prefixes world.Gen.graph peer in
  match selective with
  | None -> cone
  | Some seed ->
    let own =
      Prefix.Set.of_list (As_graph.prefixes_of world.Gen.graph peer)
    in
    let fraction =
      export_fraction (As_graph.node_exn world.Gen.graph peer).As_graph.kind
        ~cone_size:(Prefix.Set.cardinal cone)
    in
    Prefix.Set.filter
      (fun p ->
        Prefix.Set.mem p own || hash01 seed peer p < fraction)
      cone

let peer_routes ?selective (world : Gen.world) ~peers =
  let table =
    List.fold_left
      (fun acc peer ->
        Prefix.Set.fold
          (fun p acc -> Prefix_trie.add p () acc)
          (exported_prefixes ?selective world peer)
          acc)
      Prefix_trie.empty peers
  in
  { table; count = Prefix_trie.cardinal table }

let n_prefixes t = t.count
let covers_addr t addr = Prefix_trie.longest_match addr t.table <> None

let covers_prefix t p =
  Prefix_trie.mem p t.table
  || Prefix_trie.matches (Prefix.addr p) t.table
     |> List.exists (fun (q, ()) -> Prefix.subsumes q p)

let fraction_of_internet t (world : Gen.world) =
  float_of_int t.count /. float_of_int (As_graph.n_prefixes world.Gen.graph)

let peers_in_top (world : Gen.world) ~peers n =
  let topn = Asn.Set.of_list (Customer_cone.top world.Gen.graph n) in
  List.length (List.filter (fun p -> Asn.Set.mem p topn) peers)

let peer_countries (world : Gen.world) ~peers =
  List.fold_left
    (fun acc p ->
      Country.Set.add (As_graph.node_exn world.Gen.graph p).As_graph.country acc)
    Country.Set.empty peers

let routes_per_peer ?selective (world : Gen.world) ~peers =
  List.map
    (fun p ->
      (p, Prefix.Set.cardinal (exported_prefixes ?selective world p)))
    peers
  |> List.sort (fun (a1, n1) (a2, n2) ->
         match Int.compare n2 n1 with 0 -> Asn.compare a1 a2 | c -> c)
