(** A RIPE-Atlas-style end-host measurement platform (one of Table 1's
    comparators): probes hosted in edge networks that can ping and
    traceroute but run no experiment code and control no routing.

    The platform is decoupled from the testbed through a path oracle
    (any [Asn.t -> Asn.t list option] — e.g.
    [Peering_core.Testbed.path_from] partially applied), so it also
    works against raw propagation results. RTT is modelled from
    AS-level hop count. *)

open Peering_net

type probe = {
  probe_id : int;
  host_asn : Asn.t;
  country : Country.t;
}

type t

val deploy :
  rng:Peering_sim.Rng.t -> world:Peering_topo.Gen.world -> n:int -> t
(** Place [n] probes in distinct random stub ASes (fewer if the world
    has fewer stubs). *)

val probes : t -> probe list
val n_probes : t -> int

val countries : t -> Country.Set.t
(** Probe-host country footprint. *)

val per_hop_rtt_ms : float
(** Modelled per-AS-hop round-trip contribution (15 ms). *)

val ping :
  t -> path_of:(Asn.t -> Asn.t list option) -> (probe * float option) list
(** One RTT sample per probe toward whatever destination the oracle
    encodes; [None] = unreachable. *)

val traceroute :
  t -> path_of:(Asn.t -> Asn.t list option) -> probe -> Asn.t list option
(** The AS-level forward path from a probe. *)

val reachability :
  t -> path_of:(Asn.t -> Asn.t list option) -> float
(** Fraction of probes with a path. *)

val rtt_summary :
  t -> path_of:(Asn.t -> Asn.t list option) -> string
(** {!Stats.summary} over the reachable probes' RTTs. *)
