(** Structured event tracing.

    Subsystems record typed events into a shared trace; tests and
    benches query it. Keeping tracing separate from [logs] output lets
    experiments make assertions about what happened on the control
    plane (e.g. "the upstream saw no announcement for a hijacked
    prefix"). *)

type level = Debug | Info | Warn

type event = {
  time : float;
  level : level;
  subsystem : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** A trace buffer. [capacity] (default 100_000) bounds memory; older
    events are dropped beyond it. *)

val record : t -> time:float -> level:level -> subsystem:string -> string -> unit

val events : t -> event list
(** All retained events, oldest first. *)

val count : t -> int
(** Number of retained events. *)

val dropped : t -> int
(** Number of events discarded due to the capacity bound. *)

val find : t -> ?subsystem:string -> ?contains:string -> unit -> event list
(** Filter retained events by subsystem and/or substring. *)

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
