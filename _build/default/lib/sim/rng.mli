(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic choice in the testbed draws from an explicit
    [Rng.t] so that whole-world simulations replay bit-for-bit from a
    seed. The state is mutable; use {!split} to derive independent
    streams for independent subsystems. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] draws [k] elements of [l] without replacement
    (all of [l] if [k >= length l]). Order is randomised. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [1, n] from a Zipf distribution
    with exponent [s], by inversion on the precomputed CDF. For
    repeated draws with the same parameters prefer {!zipf_sampler}. *)

val zipf_sampler : n:int -> s:float -> t -> int
(** [zipf_sampler ~n ~s] precomputes the CDF once and returns a
    sampling function. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed draw (heavy tail), minimum value [scale]. *)
