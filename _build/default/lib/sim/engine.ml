type t = {
  mutable clock : float;
  queue : (unit -> unit) Event_queue.t;
  rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = 0.0; queue = Event_queue.create (); rng = Rng.create seed }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) f

let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- max t.clock time;
    f ();
    true

let run ?until ?max_events t =
  let budget = ref (Option.value max_events ~default:max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time -> (
      match until with
      | Some horizon when time > horizon -> continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done

let run_for t d =
  let horizon = t.clock +. d in
  run ~until:horizon t;
  t.clock <- max t.clock horizon
