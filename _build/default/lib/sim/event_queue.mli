(** Priority queue of timestamped events (binary min-heap).

    Ties on time break by insertion order, so simulations are
    deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event at absolute [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
