lib/sim/rng.mli:
