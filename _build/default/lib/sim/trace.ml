type level = Debug | Info | Warn

type event = {
  time : float;
  level : level;
  subsystem : string;
  message : string;
}

type t = {
  capacity : int;
  buf : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  { capacity; buf = Queue.create (); dropped = 0 }

let record t ~time ~level ~subsystem message =
  Queue.push { time; level; subsystem; message } t.buf;
  if Queue.length t.buf > t.capacity then begin
    ignore (Queue.pop t.buf);
    t.dropped <- t.dropped + 1
  end

let events t = List.of_seq (Queue.to_seq t.buf)
let count t = Queue.length t.buf
let dropped t = t.dropped

let find t ?subsystem ?contains () =
  let matches e =
    (match subsystem with None -> true | Some s -> String.equal s e.subsystem)
    &&
    match contains with
    | None -> true
    | Some needle ->
      let hlen = String.length e.message and nlen = String.length needle in
      let rec at i =
        i + nlen <= hlen
        && (String.equal (String.sub e.message i nlen) needle || at (i + 1))
      in
      nlen = 0 || at 0
  in
  List.filter matches (events t)

let clear t =
  Queue.clear t.buf;
  t.dropped <- 0

let level_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let pp_event ppf e =
  Format.fprintf ppf "[%10.3f] %-5s %-12s %s" e.time (level_string e.level)
    e.subsystem e.message
