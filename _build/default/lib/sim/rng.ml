type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Use the top bits; modulo bias is negligible for our n (< 2^40). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k l =
  let a = Array.of_list l in
  shuffle t a;
  let k = min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)

let zipf_cdf n s =
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !total
  done;
  let z = !total in
  Array.map (fun x -> x /. z) cdf

let sample_cdf cdf u =
  (* Binary search for the first index with cdf.(i) >= u. *)
  let n = Array.length cdf in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (n - 1) + 1

let zipf t ~n ~s =
  let cdf = zipf_cdf n s in
  sample_cdf cdf (float t 1.0)

let zipf_sampler ~n ~s =
  let cdf = zipf_cdf n s in
  fun t -> sample_cdf cdf (float t 1.0)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. Float.pow u (1.0 /. shape)
