(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index). Run with no arguments for all
   experiments, or pass a subset of: e1 e2 e3 f2 e4 t1 a1..a6 prop chaos
   chaos-campaign mrt sched bmp (scale the MRT dump with
   MRT_BENCH_PREFIXES and the BMP feed with BMP_BENCH_PREFIXES, both
   default 1M).
   Pass --bechamel to additionally run microbenchmarks of the core
   primitives, and --json FILE to also write every paper-vs-measured
   row plus the metrics snapshot as a machine-readable artifact. *)

open Peering_net
open Peering_core
module Engine = Peering_sim.Engine
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph
module Customer_cone = Peering_topo.Customer_cone
module Propagation = Peering_topo.Propagation
module Topology_zoo = Peering_topo.Topology_zoo
module Fabric = Peering_ixp.Fabric
module Amsix = Peering_ixp.Amsix
module Peering_policy = Peering_ixp.Peering_policy
module Router = Peering_router.Router
module Memory = Peering_router.Memory
module Rib = Peering_bgp.Rib
module Reachability = Peering_measure.Reachability
module Webworkload = Peering_measure.Webworkload
module Mininext = Peering_emu.Mininext
module Forwarder = Peering_dataplane.Forwarder
module Fib = Peering_dataplane.Fib
module Packet = Peering_dataplane.Packet

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

(* With --json, every paper-vs-measured row is also collected here
   (newest first; the driver drains it after each experiment). *)
let json_rows : (string * string * string) list ref = ref []
let collect_rows = ref false

let paper_vs_measured ~label ~paper ~measured =
  if !collect_rows then json_rows := (label, paper, measured) :: !json_rows;
  Printf.printf "  %-52s paper: %-16s measured: %s\n" label paper measured

(* ------------------------------------------------------------------ *)
(* Shared paper-scale world (used by E1/E2/E3/A1). Built once. *)

type world_ctx = {
  world : Gen.world;
  fabric : Fabric.t;
  peers : Asn.t list;  (* RS users + accepted bilateral *)
  rs_peers : Asn.t list;
  bilateral : Asn.t list;
  responses : (Fabric.response * int) list;
}

let world_ctx : world_ctx Lazy.t =
  lazy
    (let t0 = Sys.time () in
     let world = Gen.generate Gen.paper_scale_params in
     Printf.printf "[world] %d ASes, %d edges, %d prefixes (%.1fs)\n%!"
       (As_graph.n_ases world.Gen.graph)
       (As_graph.n_edges world.Gen.graph)
       (As_graph.n_prefixes world.Gen.graph)
       (Sys.time () -. t0);
     let rng = Rng.create 2014 in
     let fabric = Amsix.build ~rng world in
     let rs_peers = Fabric.route_server_users fabric in
     (* Send a peering request to every non-RS member (the paper sent
        "a few dozen"; we exercise the whole funnel). *)
     let responses_tbl = Hashtbl.create 8 in
     List.iter
       (fun (m : Fabric.member) ->
         let r = Fabric.request_peering fabric ~target:m.Fabric.asn in
         Hashtbl.replace responses_tbl r
           (1 + Option.value (Hashtbl.find_opt responses_tbl r) ~default:0))
       (Fabric.non_route_server_members fabric);
     let bilateral = Fabric.bilateral_peers fabric in
     let peers = List.sort_uniq Asn.compare (rs_peers @ bilateral) in
     let responses =
       Hashtbl.fold (fun r c acc -> (r, c) :: acc) responses_tbl []
     in
     { world; fabric; peers; rs_peers; bilateral; responses })

let reach_ctx : Reachability.t Lazy.t =
  lazy
    (let c = Lazy.force world_ctx in
     let t0 = Sys.time () in
     let r = Reachability.peer_routes ~selective:77 c.world ~peers:c.peers in
     Printf.printf "[reach] peer-route table built (%.1fs)\n%!"
       (Sys.time () -. t0);
     r)

(* ------------------------------------------------------------------ *)
(* E1: the AMS-IX peering funnel (§4.1 "Obtaining peers") *)

let e1 () =
  section "E1  AMS-IX peering funnel (Section 4.1, 'Obtaining peers')";
  let c = Lazy.force world_ctx in
  let census = Fabric.policy_census c.fabric in
  let count p = List.assoc p census in
  paper_vs_measured ~label:"member ASes" ~paper:"669"
    ~measured:(string_of_int (Fabric.n_members c.fabric));
  paper_vs_measured ~label:"peering via route servers" ~paper:"554"
    ~measured:(string_of_int (List.length c.rs_peers));
  paper_vs_measured ~label:"non-RS members" ~paper:"115"
    ~measured:
      (string_of_int (List.length (Fabric.non_route_server_members c.fabric)));
  paper_vs_measured ~label:"  with open policy" ~paper:"48"
    ~measured:(string_of_int (count Peering_policy.Open));
  paper_vs_measured ~label:"  with closed policy" ~paper:"12"
    ~measured:(string_of_int (count Peering_policy.Closed));
  paper_vs_measured ~label:"  case-by-case" ~paper:"40"
    ~measured:(string_of_int (count Peering_policy.Case_by_case));
  paper_vs_measured ~label:"  unlisted" ~paper:"15"
    ~measured:(string_of_int (count Peering_policy.Unlisted));
  (* The paper's request anecdotes concern the open-policy members it
     actually asked; responses are sticky, so re-querying tallies them. *)
  let open_tally r =
    List.length
      (List.filter
         (fun (m : Fabric.member) ->
           m.Fabric.policy = Peering_policy.Open
           && Fabric.request_peering c.fabric ~target:m.Fabric.asn = r)
         (Fabric.non_route_server_members c.fabric))
  in
  paper_vs_measured ~label:"open-policy requests accepted"
    ~paper:"vast majority"
    ~measured:
      (Printf.sprintf "%d of %d" (open_tally Fabric.Accepted)
         (count Peering_policy.Open));
  paper_vs_measured ~label:"replied with questions (open members)" ~paper:"1"
    ~measured:(string_of_int (open_tally Fabric.Replied_with_questions));
  paper_vs_measured ~label:"no response (open members)" ~paper:"a handful"
    ~measured:(string_of_int (open_tally Fabric.No_response));
  Printf.printf "  total peers after funnel: %d (all accepted bilateral: %d)\n"
    (List.length c.peers)
    (List.length c.bilateral)

(* ------------------------------------------------------------------ *)
(* E2: reachability via peering (§4.1 "Who do we peer with / which
   destinations") *)

let e2 () =
  section "E2  Destinations reachable via peering (Section 4.1)";
  let c = Lazy.force world_ctx in
  let reach = Lazy.force reach_ctx in
  let n = Reachability.n_prefixes reach in
  let frac = Reachability.fraction_of_internet reach c.world in
  paper_vs_measured ~label:"prefixes with peer routes" ~paper:">131,000"
    ~measured:(Printf.sprintf "%d" n);
  paper_vs_measured ~label:"fraction of the Internet" ~paper:"~25%"
    ~measured:(Printf.sprintf "%.1f%%" (100.0 *. frac));
  paper_vs_measured ~label:"peers among top-50 ASes (customer cone)"
    ~paper:">=13"
    ~measured:
      (string_of_int (Reachability.peers_in_top c.world ~peers:c.peers 50));
  paper_vs_measured ~label:"peers among top-100 ASes" ~paper:"27"
    ~measured:
      (string_of_int (Reachability.peers_in_top c.world ~peers:c.peers 100));
  let countries = Reachability.peer_countries c.world ~peers:c.peers in
  paper_vs_measured ~label:"countries of peers" ~paper:"59"
    ~measured:(string_of_int (Country.Set.cardinal countries));
  (* per-peer route-count distribution (quoted in §4.2's discussion) *)
  let per_peer = Reachability.routes_per_peer ~selective:77 c.world ~peers:c.peers in
  let over_10k = List.length (List.filter (fun (_, n) -> n > 10_000) per_peer) in
  let under_100 = List.length (List.filter (fun (_, n) -> n < 100) per_peer) in
  paper_vs_measured ~label:"peers exporting >10K routes" ~paper:"5"
    ~measured:(string_of_int over_10k);
  paper_vs_measured ~label:"peers exporting <100 routes" ~paper:"307"
    ~measured:(string_of_int under_100);
  match per_peer with
  | (top_asn, top_n) :: _ ->
    Printf.printf "  largest peer feed: %s with %d prefixes\n"
      (Asn.to_string top_asn) top_n
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* E3: Alexa-style content reachability (§4.1) *)

let e3 () =
  section "E3  Popular-content reachability (Section 4.1, Alexa experiment)";
  let c = Lazy.force world_ctx in
  let reach = Lazy.force reach_ctx in
  let rng = Rng.create 500 in
  let wl = Webworkload.generate ~rng c.world in
  let sites = wl.Webworkload.sites in
  let reachable_sites =
    List.filter
      (fun (s : Webworkload.site) ->
        Reachability.covers_addr reach s.Webworkload.addr)
      sites
  in
  paper_vs_measured ~label:"top sites fetched" ~paper:"500"
    ~measured:(string_of_int (List.length sites));
  paper_vs_measured ~label:"sites with peer routes" ~paper:"157 (31%)"
    ~measured:
      (Printf.sprintf "%d (%.0f%%)"
         (List.length reachable_sites)
         (100.0
         *. float_of_int (List.length reachable_sites)
         /. float_of_int (max 1 (List.length sites))));
  let total_res = Webworkload.total_resources wl in
  let fqdns = Webworkload.distinct_resource_fqdns wl in
  let addrs = Webworkload.distinct_resource_addrs wl in
  let covered =
    List.filter (fun a -> Reachability.covers_addr reach a) addrs
  in
  paper_vs_measured ~label:"embedded resources" ~paper:"49,776"
    ~measured:(string_of_int total_res);
  paper_vs_measured ~label:"distinct resource FQDNs" ~paper:"4,182"
    ~measured:(string_of_int (List.length fqdns));
  paper_vs_measured ~label:"distinct resource IPs" ~paper:"2,757"
    ~measured:(string_of_int (List.length addrs));
  paper_vs_measured ~label:"resource IPs with peer routes" ~paper:"1,055 (38%)"
    ~measured:
      (Printf.sprintf "%d (%.0f%%)"
         (List.length covered)
         (100.0
         *. float_of_int (List.length covered)
         /. float_of_int (max 1 (List.length addrs))))

(* ------------------------------------------------------------------ *)
(* F2: BGP table memory usage (Figure 2) *)

let f2 () =
  section "F2  BGP table memory vs prefixes and peers (Figure 2)";
  Printf.printf
    "  Modelled resident memory (MB), Quagga-calibrated (Fig. 2 axes):\n";
  (* 1M extends the grid an order of magnitude past the synthetic
     world, to the full-DFZ feed size the MRT bench loads for real. *)
  let xs = [ 15_625; 125_000; 250_000; 375_000; 500_000; 1_000_000 ] in
  let ns = [ 5; 10; 15; 20 ] in
  row "  %10s" "prefixes";
  List.iter (fun n -> row " %9s" (Printf.sprintf "%dpeers" n)) ns;
  row "\n";
  List.iter
    (fun x ->
      row "  %10d" x;
      List.iter
        (fun n ->
          let b = Memory.model_bytes ~peers:n ~prefixes_per_peer:x () in
          row " %9.0f" (float_of_int b /. 1048576.0))
        ns;
      row "\n")
    xs;
  Printf.printf
    "\n  Measured (Obj.reachable_words) on our actual RIB, 1/25 scale:\n";
  row "  %10s" "prefixes";
  List.iter (fun n -> row " %9s" (Printf.sprintf "%dpeers" n)) ns;
  row "\n";
  List.iter
    (fun x ->
      let scaled = x / 25 in
      row "  %10d" scaled;
      List.iter
        (fun n ->
          let rib = Memory.fill_rib ~peers:n ~prefixes_per_peer:scaled in
          let b = Memory.measured_bytes rib in
          row " %9.1f" (float_of_int b /. 1048576.0))
        ns;
      row "\n")
    [ 15_625; 62_500; 125_000 ];
  Printf.printf
    "  Shape check: linear in prefixes with a per-peer slope, as in Fig. 2.\n"

(* ------------------------------------------------------------------ *)
(* E4: HE backbone emulation (§4.2) *)

let e4 () =
  section "E4  Emulating Hurricane Electric's backbone (Section 4.2)";
  let engine = Engine.create ~seed:9 () in
  let fwd = Forwarder.create engine in
  let emu =
    Mininext.of_topology engine fwd ~asn:(Asn.of_int 6939)
      Topology_zoo.hurricane_electric
  in
  paper_vs_measured ~label:"PoPs emulated" ~paper:"24"
    ~measured:(string_of_int (Mininext.n_pops emu));
  Mininext.start emu;
  Engine.run ~until:120.0 engine;
  Printf.printf "  iBGP full mesh: %d sessions\n" (Mininext.n_ibgp_sessions emu);
  (* Each PoP originates a prefix, as in the paper. *)
  List.iteri
    (fun i p ->
      Mininext.originate_at emu (Mininext.pop_name p)
        (Prefix.make (Ipv4.of_octets 184 164 (224 + i) 0) 24))
    (Mininext.pops emu);
  let t_start = Engine.now engine in
  let converged target =
    List.for_all
      (fun p -> Mininext.routes_at emu (Mininext.pop_name p) >= target)
      (Mininext.pops emu)
  in
  let rec drive target deadline =
    if (not (converged target)) && Engine.now engine < deadline then begin
      Engine.run_for engine 1.0;
      drive target deadline
    end
  in
  drive 24 (t_start +. 600.0);
  paper_vs_measured ~label:"route propagation through emulated AS"
    ~paper:"works"
    ~measured:
      (Printf.sprintf "24 prefixes at every PoP in %.1f virtual s"
         (Engine.now engine -. t_start));
  (* AMS-IX feed: an external PEERING mux session at the Amsterdam PoP. *)
  let mux =
    Router.create engine ~asn:(Asn.of_int 47065)
      ~router_id:(Ipv4.of_string_exn "100.65.0.1") ()
  in
  let ams = Mininext.pop_exn emu "Amsterdam" in
  ignore
    (Router.connect engine
       (mux, Ipv4.of_string_exn "100.65.0.1")
       (Mininext.router ams, Mininext.loopback ams));
  Engine.run_for engine 10.0;
  let n_feed = 200 in
  for i = 0 to n_feed - 1 do
    Router.originate mux
      (Prefix.make (Ipv4.of_octets 20 (i / 256) (i mod 256) 0) 24)
  done;
  let t_feed = Engine.now engine in
  drive (24 + n_feed) (t_feed +. 600.0);
  paper_vs_measured ~label:"AMS-IX routes propagate into all PoPs"
    ~paper:"works"
    ~measured:
      (Printf.sprintf "%d routes at every PoP after %.1f virtual s"
         (24 + n_feed)
         (Engine.now engine -. t_feed));
  (* Routes flow back out: the mux learns every PoP prefix. *)
  let supply = Prefix.of_string_exn "184.164.192.0/18" in
  let back =
    List.length
      (List.filter
         (fun (p, _) -> Prefix.subsumes supply p)
         (Rib.best_routes (Router.rib mux)))
  in
  paper_vs_measured ~label:"emulated PoP prefixes exported to AMS-IX"
    ~paper:"works" ~measured:(Printf.sprintf "%d of 24" back);
  (* Dataplane: traffic from Seattle to an AMS-IX destination. *)
  Forwarder.add_node fwd "internet";
  Forwarder.add_address fwd "internet" (Ipv4.of_string_exn "20.0.0.1");
  Forwarder.set_route fwd "internet" (Prefix.of_string_exn "20.0.0.0/8")
    Fib.Local;
  Mininext.external_gateway emu ~pop:"Amsterdam"
    ~peer_addr:(Ipv4.of_string_exn "100.65.0.1")
    ~node:"internet";
  Mininext.sync_fibs emu;
  let delivered = ref 0 in
  Forwarder.on_deliver fwd "internet" (fun _ -> incr delivered);
  let seattle = Mininext.pop_exn emu "Seattle" in
  Forwarder.inject fwd
    ~at:(Mininext.node_id seattle)
    (Packet.make
       ~src:(Mininext.loopback seattle)
       ~dst:(Ipv4.of_string_exn "20.0.0.1")
       ());
  Engine.run_for engine 5.0;
  paper_vs_measured ~label:"traffic flows emulated PoP -> Internet"
    ~paper:"works"
    ~measured:(if !delivered = 1 then "delivered" else "FAILED");
  (* Memory footprint: the paper ran this in 8 GB. *)
  let model_gb =
    float_of_int (Mininext.container_model_bytes emu) /. 1073741824.0
  in
  let measured_mb =
    float_of_int (Mininext.memory_words emu * (Sys.word_size / 8))
    /. 1048576.0
  in
  paper_vs_measured ~label:"memory footprint" ~paper:"<8 GB (desktop)"
    ~measured:
      (Printf.sprintf "%.2f GB modelled, %.1f MB actual OCaml RIBs" model_gb
         measured_mb)

(* ------------------------------------------------------------------ *)
(* T1: testbed capability matrix (Table 1) *)

let t1 () =
  section "T1  Testbed capability matrix (Table 1)";
  print_string (Capability.render ());
  Printf.printf "\n";
  paper_vs_measured ~label:"PEERING meets all six goals" ~paper:"yes"
    ~measured:(if Capability.peering_meets_all () then "yes" else "NO");
  paper_vs_measured ~label:"pairs of other testbeds covering all goals"
    ~paper:"none"
    ~measured:
      (match Capability.combinations_covering_all () with
      | [] -> "none"
      | l -> Printf.sprintf "%d pairs (!)" (List.length l))

(* ------------------------------------------------------------------ *)
(* A1: route server vs bilateral-only connectivity *)

let a1 () =
  section "A1  Ablation: route server vs bilateral-only peering";
  let c = Lazy.force world_ctx in
  let coverage peers =
    let r = Reachability.peer_routes ~selective:77 c.world ~peers in
    (List.length peers, Reachability.n_prefixes r)
  in
  let n_all, cov_all = coverage c.peers in
  let n_bi, cov_bi = coverage c.bilateral in
  let n_rs, cov_rs = coverage c.rs_peers in
  row "  %-28s %10s %16s\n" "configuration" "peers" "prefixes";
  row "  %-28s %10d %16d\n" "route server + bilateral" n_all cov_all;
  row "  %-28s %10d %16d\n" "route server only" n_rs cov_rs;
  row "  %-28s %10d %16d\n" "bilateral only (no RS)" n_bi cov_bi;
  Printf.printf
    "  The route server supplies %.0f%% of all peers instantly -- the\n\
    \  paper's 'instantly established peering with hundreds of ASes'.\n"
    (100.0 *. float_of_int n_rs /. float_of_int (max 1 n_all))

(* ------------------------------------------------------------------ *)
(* A2: per-peer sessions (Quagga) vs ADD-PATH mux (BIRD) *)

let a2 () =
  section "A2  Ablation: session multiplexing (Quagga per-peer vs BIRD ADD-PATH)";
  let engine = Engine.create () in
  let safety =
    Safety.create ~peering_asn:(Asn.of_int 47065) ~owns:(fun _ -> true) ()
  in
  let n_peers = 554 in
  row "  %-10s %8s %18s %18s %12s\n" "clients" "peers" "sessions(quagga)"
    "sessions(bird)" "mem ratio";
  List.iter
    (fun n_clients ->
      let mk mux =
        let s =
          Server.create engine ~name:"bench" ~asn:(Asn.of_int 47065) ~safety
            ~mux ~export:(fun _ -> ()) ()
        in
        for i = 1 to n_peers do
          Server.add_peer s ~kind:Server.Route_server_peer
            (Asn.of_int (1000 + i))
        done;
        for i = 1 to n_clients do
          let experiment =
            Experiment.make
              ~id:(Printf.sprintf "a2-%d-%d" n_clients i)
              ~owner:"bench"
              ~description:"session multiplexing ablation experiment" ()
          in
          experiment.Experiment.status <- Experiment.Active;
          Server.connect_client s ~experiment (Printf.sprintf "c%d" i)
        done;
        Server.session_stats s
      in
      let q = mk Server.Per_peer_sessions in
      let b = mk Server.Add_path_mux in
      row "  %-10d %8d %18d %18d %11.1fx\n" n_clients n_peers
        q.Server.total_sessions b.Server.total_sessions
        (float_of_int q.Server.est_memory_bytes
        /. float_of_int b.Server.est_memory_bytes))
    [ 1; 2; 5; 10; 20 ];
  Printf.printf
    "  Quagga 'cannot support large IXPs with many peers' (Section 3):\n\
    \  per-peer sessions scale as clients x peers; ADD-PATH keeps one\n\
    \  session per client.\n"

(* ------------------------------------------------------------------ *)
(* A3: safety filters on/off -- hijack containment *)

let a3 () =
  section "A3  Ablation: safety filters (hijack/leak containment)";
  let params =
    { Testbed.default_params with
      Testbed.world =
        { Gen.default_params with
          Gen.n_stub = 900;
          n_small_transit = 80;
          target_prefixes = 4000
        };
      university_sites = [ ("gatech01", 2) ]
    }
  in
  let t = Testbed.build ~params () in
  let exp =
    match Testbed.new_experiment t ~id:"a3" () with
    | Ok e -> e
    | Error e -> failwith e
  in
  let client = Client.create ~id:"a3-client" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let victim_origin = List.hd (Testbed.world t).Gen.stubs in
  let victim =
    List.hd (As_graph.prefixes_of (Testbed.graph t) victim_origin)
  in
  (* Legitimate state of the world. *)
  Testbed.inject_external t ~origin:victim_origin victim;
  let legit = Testbed.reach_count t victim in
  (* With safety: the client's hijack is refused at the server. *)
  let refused =
    match Client.announce client victim with
    | [ (_, Error Safety.Prefix_not_owned) ] -> true
    | _ -> false
  in
  row "  %-48s %s\n" "client hijack attempt WITH safety filters:"
    (if refused then "blocked at server" else "NOT BLOCKED");
  row "  %-48s %d of %d ASes\n" "  ASes still routing to the true origin:"
    (Testbed.reach_count t victim)
    legit;
  (* Without safety: model the same announcement escaping filtering. *)
  let attacker = List.nth (Testbed.world t).Gen.small_transit 3 in
  Testbed.inject_external t ~origin:attacker victim;
  (match Testbed.result_for t victim with
  | Some r ->
    let polluted =
      List.fold_left
        (fun acc (i, n) -> if i = 1 then acc + n else acc)
        0
        (Propagation.catchment r)
    in
    row "  %-48s %d ASes diverted\n"
      "same announcement WITHOUT safety filters:" polluted
  | None -> row "  (no result)\n");
  Printf.printf
    "  Outbound prefix/origin filters make client hijacks impossible; an\n\
    \  unfiltered AS making the same announcement pollutes much of the\n\
    \  Internet.\n"

(* ------------------------------------------------------------------ *)
(* A4: route-flap dampening on/off *)

let a4 () =
  section "A4  Ablation: route-flap dampening (client churn containment)";
  let flap_storm dampening =
    let safety =
      Safety.create ?dampening ~peering_asn:(Asn.of_int 47065)
        ~owns:(fun _ -> true) ()
    in
    let exp =
      Experiment.make ~id:"a4" ~owner:"bench"
        ~description:"dampening ablation flap storm experiment" ()
    in
    exp.Experiment.prefixes <- [ Prefix.of_string_exn "184.164.224.0/24" ];
    exp.Experiment.status <- Experiment.Active;
    let p = Prefix.of_string_exn "184.164.224.0/24" in
    let accepted = ref 0 and suppressed = ref 0 in
    for i = 0 to 99 do
      let now = float_of_int i *. 10.0 in
      (match
         Safety.check_announce safety ~now ~client:"flappy" ~experiment:exp
           ~prefix:p ~path_suffix:[]
       with
      | Ok () -> incr accepted
      | Error _ -> incr suppressed);
      Safety.note_withdraw safety ~now:(now +. 5.0) ~client:"flappy" ~prefix:p
    done;
    (!accepted, !suppressed)
  in
  let acc_on, sup_on = flap_storm None in
  let no_dampening =
    { Peering_bgp.Dampening.default_params with
      Peering_bgp.Dampening.suppress_threshold = infinity
    }
  in
  let acc_off, sup_off = flap_storm (Some no_dampening) in
  row "  %-36s %12s %12s\n" "configuration" "accepted" "suppressed";
  row "  %-36s %12d %12d\n" "dampening enabled (RFC 2439)" acc_on sup_on;
  row "  %-36s %12d %12d\n" "dampening disabled" acc_off sup_off;
  Printf.printf
    "  A client flapping every 10 s is cut off quickly: upstream peers see\n\
    \  %d control-plane events instead of %d.\n"
    (2 * acc_on) (2 * acc_off)

(* ------------------------------------------------------------------ *)
(* A5: remote peering expansion *)

let a5 () =
  section "A5  Ablation: remote peering expansion (Section 3, Hibernia model)";
  let t = Testbed.build () in
  let report label =
    let peers = Testbed.peers_at t "amsterdam01" in
    let r = Reachability.peer_routes ~selective:77 (Testbed.world t) ~peers in
    row "  %-26s %6d peers %10d prefixes (%.1f%%)\n" label (List.length peers)
      (Reachability.n_prefixes r)
      (100.0 *. Reachability.fraction_of_internet r (Testbed.world t))
  in
  report "AMS-IX only";
  List.iter
    (fun name ->
      ignore (Testbed.add_remote_ixp t ~via:"amsterdam01" ~name ());
      report (Printf.sprintf "+ %s (remote)" name))
    [ "DE-CIX"; "LINX"; "France-IX"; "HKIX"; "Seattle-IX" ];
  Printf.printf
    "  Each remotely-peered IXP adds peers with no new physical server --\n\
    \  the paper's path to 'deploying servers at major IXPs and remotely\n\
    \  peering at smaller IXPs'.\n"

(* ------------------------------------------------------------------ *)
(* A6: secure-BGP (ROV) partial deployment *)

let a6 () =
  section
    "A6  Secure BGP in partial deployment (the Section 2 adoption study)";
  let params =
    { Testbed.default_params with
      Testbed.world =
        { Gen.default_params with
          Gen.n_stub = 900;
          n_small_transit = 80;
          target_prefixes = 4000
        };
      university_sites = [ ("gatech01", 2) ]
    }
  in
  let t = Testbed.build ~params () in
  let exp =
    match Testbed.new_experiment t ~id:"rov" () with
    | Ok e -> e
    | Error e -> failwith e
  in
  let client = Client.create ~id:"rov-victim" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
  let prefix = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client prefix);
  (* The victim registers a ROA for its prefix. *)
  let roas =
    Peering_bgp.Rpki.add_roa Peering_bgp.Rpki.empty ~prefix Testbed.peering_asn
  in
  let attacker = List.nth (Testbed.world t).Gen.small_transit 3 in
  Testbed.inject_external t ~origin:attacker prefix;
  let all_ases = Array.of_list (As_graph.ases (Testbed.graph t)) in
  let rng = Rng.create 4242 in
  Rng.shuffle rng all_ases;
  let n = Array.length all_ases in
  row "  %-12s %14s %14s %10s\n" "ROV adoption" "hijacked ASes" "victim keeps"
    "hijack %";
  List.iter
    (fun fraction ->
      let n_adopt = int_of_float (fraction *. float_of_int n) in
      let adopters =
        Asn.Set.of_list (Array.to_list (Array.sub all_ases 0 n_adopt))
      in
      Testbed.set_rov t ~roas ~adopters;
      match Testbed.result_for t prefix with
      | None -> row "  (no result)\n"
      | Some r ->
        (* An AS is hijacked when its traffic terminates at the
           attacker instead of entering a PEERING site. *)
        let reachable = Propagation.reachable r in
        let stolen, kept =
          List.fold_left
            (fun (s, k) asn ->
              if Asn.equal asn attacker then (s, k)
              else
                match Testbed.ingress_site t ~from_asn:asn prefix with
                | Some _ -> (s, k + 1)
                | None -> (s + 1, k))
            (0, 0) reachable
        in
        row "  %10.0f%% %14d %14d %9.1f%%\n" (100.0 *. fraction) stolen kept
          (100.0 *. float_of_int stolen /. float_of_int (max 1 (stolen + kept))))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Testbed.clear_rov t;
  Testbed.retract_external t ~origin:attacker prefix;
  Printf.printf
    "  Partial ROV deployment gives partial protection; adopters protect\n\
    \  themselves and their customers, but non-adopters stay hijackable --\n\
    \  the 'is the juice worth the squeeze' shape the Section 2 study\n\
    \  design targets.\n"

(* ------------------------------------------------------------------ *)
(* CHAOS: fault-injection drill (robustness) *)

let chaos () =
  section "CHAOS  Fault-injection drill (graceful degradation under faults)";
  let module Chaos = Peering_fault.Chaos in
  let outcomes = Chaos.run_all ~seed:42 () in
  List.iter
    (fun (o : Chaos.outcome) ->
      paper_vs_measured
        ~label:(Printf.sprintf "%s (%s) reconverges" o.Chaos.scenario o.Chaos.fault_class)
        ~paper:"yes, no routes lost"
        ~measured:
          (if o.Chaos.reconverged then
             Printf.sprintf "yes in %.2f virtual s, %d lost" o.Chaos.recovery_s
               o.Chaos.routes_lost
           else Printf.sprintf "STUCK (%d lost)" o.Chaos.routes_lost);
      Printf.printf "    %s\n" o.Chaos.detail)
    outcomes;
  let stuck =
    List.length (List.filter (fun (o : Chaos.outcome) -> not o.Chaos.reconverged) outcomes)
  in
  paper_vs_measured ~label:"scenarios reconverged" ~paper:"all"
    ~measured:
      (Printf.sprintf "%d of %d" (List.length outcomes - stuck) (List.length outcomes))

(* ------------------------------------------------------------------ *)
(* CHAOS-CAMPAIGN: compound faults on the default testbed *)

let chaos_campaign () =
  section
    "CHAOS-CAMPAIGN  Compound faults, recovery SLOs, blast radius (testbed \
     scale)";
  let module Campaign = Peering_fault.Campaign in
  let r = Campaign.run ~seed:42 () in
  List.iter
    (fun (o : Campaign.outcome) ->
      paper_vs_measured
        ~label:(Printf.sprintf "%s drill recovers" o.Campaign.drill)
        ~paper:"yes, zero routes lost"
        ~measured:
          (if o.Campaign.reconverged then
             Printf.sprintf "yes in %.2f virtual s, %d lost"
               o.Campaign.recovery_s o.Campaign.routes_lost
           else Printf.sprintf "STUCK (%d lost)" o.Campaign.routes_lost);
      Printf.printf "    blast: sites [%s], %d trace spans, %d reach dips\n"
        (String.concat "; " o.Campaign.blast.Campaign.impacted_sites)
        o.Campaign.blast.Campaign.trace_spans
        (List.length o.Campaign.blast.Campaign.reach_dips))
    r.Campaign.outcomes;
  List.iter
    (fun (v : Campaign.slo_verdict) ->
      paper_vs_measured
        ~label:(Printf.sprintf "p99 recovery (%s)" v.Campaign.verdict_class)
        ~paper:(Printf.sprintf "<= %.0fs budget" v.Campaign.budget_s)
        ~measured:
          (Printf.sprintf "%.2fs over %d samples%s" v.Campaign.p99_s
             v.Campaign.samples
             (if v.Campaign.met then "" else " (MISSED)")))
    r.Campaign.slos;
  paper_vs_measured ~label:"campaign verdict" ~paper:"passed"
    ~measured:(if r.Campaign.passed then "passed" else "FAILED")

(* ------------------------------------------------------------------ *)
(* PROP: parallel valley-free propagation speedup (ROADMAP item) *)

let prop () =
  section
    "PROP  Parallel propagation on the ~45K-AS world (E2/E3's engine cost)";
  let c = Lazy.force world_ctx in
  let g = c.world.Gen.graph in
  let origin = List.hd c.world.Gen.stubs in
  let p = List.hd (As_graph.prefixes_of g origin) in
  let anns = [ Propagation.announce origin p ] in
  Printf.printf
    "  one announcement propagated over %d ASes / %d edges; wall time is\n\
    \  the best of 3 runs (host has %d recommended domains)\n"
    (As_graph.n_ases g) (As_graph.n_edges g)
    (Domain.recommended_domain_count ());
  (* Wall clock, not [Sys.time]: CPU time sums over domains and would
     hide any speedup. *)
  let timed f =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    match !result with
    | Some r -> (r, !best)
    | None -> assert false
  in
  let digest r =
    Digest.to_hex (Digest.string (Marshal.to_string (Propagation.table r) []))
  in
  let seq_r, seq_t = timed (fun () -> Propagation.propagate_seq g anns) in
  let seq_digest = digest seq_r in
  paper_vs_measured ~label:"sequential reference wall time" ~paper:"n/a"
    ~measured:(Printf.sprintf "%.1f ms" (1000.0 *. seq_t));
  let all_identical = ref true in
  List.iter
    (fun d ->
      let r, t = timed (fun () -> Propagation.propagate ~domains:d g anns) in
      let identical = digest r = seq_digest in
      if not identical then all_identical := false;
      paper_vs_measured
        ~label:(Printf.sprintf "propagation speedup at %d domains" d)
        ~paper:">1.5x at 4 (multicore host)"
        ~measured:
          (Printf.sprintf "%.2fx (%.1f ms, table %s)" (seq_t /. t)
             (1000.0 *. t)
             (if identical then "identical" else "DIVERGED")))
    [ 1; 2; 4; 8 ];
  paper_vs_measured ~label:"route tables byte-identical across domain counts"
    ~paper:"byte-identical"
    ~measured:(if !all_identical then "yes" else "NO");
  Printf.printf
    "  reachable: %d ASes; rounds/offers/adoptions are in the metrics\n\
    \  snapshot (topo.propagation.*) and identical for every domain count.\n"
    (Propagation.reachable_count seq_r)

(* ------------------------------------------------------------------ *)
(* MRT: the wire hot path — decode throughput, cursor vs eager, and
   the 1M-prefix / 20-peer mux load of the ISSUE's F2 extension.
   Wall-clock rows here are volatile by nature, like PROP's. *)

module Mrt = Peering_measure.Mrt
module Wire = Peering_bgp.Wire

(* Peak RSS as the kernel saw it; unlike GC stats this includes the
   decode buffers. Process-wide, so when several experiments run it
   reflects the largest of them. *)
let vm_hwm_mb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          close_in ic;
          Scanf.sscanf
            (String.sub line 6 (String.length line - 6))
            " %d kB"
            (fun kb -> Some (float_of_int kb /. 1024.0))
        end
        else go ()
      | exception End_of_file ->
        close_in ic;
        None
    in
    go ()
  with Sys_error _ | Scanf.Scan_failure _ | Failure _ -> None

let mrt () =
  section "MRT  RFC 6396 ingest: decode throughput and 1M-prefix mux load";
  let n_prefixes =
    match Sys.getenv_opt "MRT_BENCH_PREFIXES" with
    | Some s -> int_of_string s
    | None -> 1_000_000
  in
  let n_peers = 20 in
  let peers = Mrt.make_peers ~n:n_peers in
  (* Generate a TABLE_DUMP_V2 dump, streamed straight into one buffer
     (records are never materialized as a list). *)
  let t0 = Unix.gettimeofday () in
  let buf = Buffer.create (64 * 1024 * 1024) in
  Mrt.iter_synthetic_rib ~peers ~n_prefixes (fun r -> Mrt.encode_record buf r);
  let dump = Buffer.to_bytes buf in
  let gen_t = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  dump: %d prefixes sharded over %d peers, %.1f MB (generated in %.1fs)\n"
    n_prefixes n_peers
    (float_of_int (Bytes.length dump) /. 1048576.0)
    gen_t;
  paper_vs_measured ~label:"RIB dump size"
    ~paper:"~1M prefixes (full DFZ feed, §2)"
    ~measured:
      (Printf.sprintf "%d prefixes, %.1f MB" n_prefixes
         (float_of_int (Bytes.length dump) /. 1048576.0));
  (* Pass 1: streaming decode, nothing retained. *)
  let t0 = Unix.gettimeofday () in
  (match
     Mrt.fold dump ~init:(0, 0) ~f:(fun (r, e) t ->
         match t.Mrt.record with
         | Mrt.Rib_v4 { entries; _ } -> (r + 1, e + List.length entries)
         | _ -> (r + 1, e))
   with
  | Error e -> failwith (Mrt.error_to_string e)
  | Ok (records, entries) ->
    let dt = Unix.gettimeofday () -. t0 in
    paper_vs_measured ~label:"MRT decode throughput" ~paper:"n/a"
      ~measured:
        (Printf.sprintf "%.0fk records/s (%d records, %d entries, %.1fs)"
           (float_of_int records /. dt /. 1000.0)
           records entries dt));
  (* Pass 2: load into a mux-style table (per-peer Adj-RIBs-In feeding
     a Loc-RIB through the decision process). *)
  let t0 = Unix.gettimeofday () in
  (match Mrt.load dump with
  | Error e -> failwith (Mrt.error_to_string e)
  | Ok l ->
    let dt = Unix.gettimeofday () -. t0 in
    let model_mb =
      float_of_int
        (Memory.model_bytes ~peers:n_peers
           ~prefixes_per_peer:(n_prefixes / n_peers) ())
      /. 1048576.0
    in
    let rib_mb =
      float_of_int (Memory.measured_bytes l.Mrt.rib) /. 1048576.0
    in
    paper_vs_measured
      ~label:
        (Printf.sprintf "mux load: %dk prefixes into %d peers"
           (n_prefixes / 1000) n_peers)
      ~paper:"tables are the mux scaling wall (Fig. 2)"
      ~measured:
        (Printf.sprintf "%d routes in %.1fs (%.0fk routes/s)" l.Mrt.routes4
           dt
           (float_of_int l.Mrt.routes4 /. dt /. 1000.0));
    paper_vs_measured ~label:"table memory after load"
      ~paper:(Printf.sprintf "Fig. 2 model: %.0f MB" model_mb)
      ~measured:(Printf.sprintf "%.0f MB (Obj.reachable_words)" rib_mb);
    let gc_mb =
      float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * Sys.word_size / 8)
      /. 1048576.0
    in
    (match vm_hwm_mb () with
    | Some hwm ->
      paper_vs_measured ~label:"peak RSS (VmHWM, process-wide)"
        ~paper:"n/a"
        ~measured:
          (Printf.sprintf "%.0f MB (GC top heap %.0f MB)" hwm gc_mb)
    | None ->
      paper_vs_measured ~label:"peak heap (GC top_heap_words)" ~paper:"n/a"
        ~measured:(Printf.sprintf "%.0f MB" gc_mb)));
  (* Pass 3: cursor vs eager on a plain BGP UPDATE stream — the
     session hot path, without MRT framing. *)
  let n_msgs = min 200_000 (max 1 n_prefixes) in
  let opts = Wire.{ four_octet_asn = true; add_path = false } in
  let sb = Buffer.create (64 * n_msgs) in
  for i = 0 to n_msgs - 1 do
    let attrs =
      Peering_bgp.Attrs.make
        ~as_path:
          (Peering_bgp.As_path.of_asns
             [ Asn.of_int (64500 + (i mod 20));
               Asn.of_int (64000 + (i mod 37));
               Asn.of_int (65000 + (i mod 997))
             ])
        ~next_hop:(Ipv4.of_int (0x0A010001 + (i mod 20)))
        ()
    in
    let p = Prefix.make (Ipv4.of_int (0x0400_0000 lor (i lsl 10))) 22 in
    Buffer.add_bytes sb
      (Wire.encode opts
         (Peering_bgp.Message.update_of_announce p attrs))
  done;
  let stream = Buffer.to_bytes sb in
  let walk decode =
    let t0 = Unix.gettimeofday () in
    let n = ref 0 and pos = ref 0 in
    let total = Bytes.length stream in
    while !pos < total do
      match decode opts stream ~pos:!pos with
      | Ok (_, next) ->
        incr n;
        pos := next
      | Error e -> failwith (Wire.error_to_string e)
    done;
    (!n, Unix.gettimeofday () -. t0)
  in
  let n_cursor, t_cursor = walk Wire.decode in
  let n_eager, t_eager = walk Wire.decode_eager in
  assert (n_cursor = n_eager);
  paper_vs_measured ~label:"UPDATE decode, cursor path" ~paper:"n/a"
    ~measured:
      (Printf.sprintf "%.0fk msgs/s (%d msgs, %.2fs)"
         (float_of_int n_cursor /. t_cursor /. 1000.0)
         n_cursor t_cursor);
  paper_vs_measured ~label:"UPDATE decode, eager reference" ~paper:"n/a"
    ~measured:
      (Printf.sprintf "%.0fk msgs/s (cursor is %.2fx)"
         (float_of_int n_eager /. t_eager /. 1000.0)
         (t_eager /. t_cursor))

(* ------------------------------------------------------------------ *)
(* BMP: telemetry-plane throughput. One synthetic full-table feed —
   Route Monitoring announces sharded over the mux's peers, the same
   1M-prefix / 20-peer load the MRT experiment uses — is first encoded
   (the mux's export path) and then pushed through a live
   Peering_measure.Monitor in transport-sized chunks (the station's
   ingest + reconstruction path). Scale with BMP_BENCH_PREFIXES. *)

module Bmp = Peering_bgp.Bmp
module Monitor = Peering_measure.Monitor

let bmp () =
  section "BMP  RFC 7854 telemetry: export and ingest throughput";
  let n_prefixes =
    match Sys.getenv_opt "BMP_BENCH_PREFIXES" with
    | Some s -> int_of_string s
    | None -> 1_000_000
  in
  let n_peers = 20 in
  let peer_hdr i =
    Bmp.make_peer_header
      ~addr:(Ipv4.of_int (0x0A000001 + i))
      ~asn:(Asn.of_int (64500 + i))
      ~time:(1.0 +. (0.001 *. float_of_int i))
      ()
  in
  let hdrs = Array.init n_peers peer_hdr in
  let msg_of i =
    let attrs =
      Peering_bgp.Attrs.make
        ~as_path:
          (Peering_bgp.As_path.of_asns
             [ Asn.of_int (64500 + (i mod n_peers));
               Asn.of_int (64000 + (i mod 37));
               Asn.of_int (65000 + (i mod 997))
             ])
        ~next_hop:(Ipv4.of_int (0x0A010001 + (i mod n_peers)))
        ()
    in
    let p = Prefix.make (Ipv4.of_int (0x0400_0000 lor (i lsl 10))) 22 in
    Bmp.Route_monitoring
      { peer = hdrs.(i mod n_peers);
        update =
          { Peering_bgp.Message.withdrawn = [];
            attrs = Some attrs;
            nlri = [ (0, p) ]
          }
      }
  in
  (* Export path: per-message encode, streamed into one buffer. *)
  let t0 = Unix.gettimeofday () in
  let buf = Buffer.create (64 * 1024 * 1024) in
  for i = 0 to n_prefixes - 1 do
    Buffer.add_bytes buf (Bmp.encode (msg_of i))
  done;
  let feed = Buffer.to_bytes buf in
  let t_enc = Unix.gettimeofday () -. t0 in
  paper_vs_measured ~label:"BMP export (encode)" ~paper:"n/a"
    ~measured:
      (Printf.sprintf "%.0fk msgs/s (%d msgs, %.1f MB, %.2fs)"
         (float_of_int n_prefixes /. t_enc /. 1000.0)
         n_prefixes
         (float_of_int (Bytes.length feed) /. 1048576.0)
         t_enc);
  (* Ingest path: the station reassembles frames from transport-sized
     chunks and rebuilds the per-peer Adj-RIBs-In as it goes. *)
  let mon = Monitor.create () in
  let chunk = 64 * 1024 in
  let total = Bytes.length feed in
  let t0 = Unix.gettimeofday () in
  let pos = ref 0 in
  while !pos < total do
    let len = min chunk (total - !pos) in
    Monitor.feed mon ~mux:"bench" (Bytes.sub feed !pos len);
    pos := !pos + len
  done;
  let t_ing = Unix.gettimeofday () -. t0 in
  if Monitor.messages mon <> n_prefixes then
    failwith "bmp bench: station lost messages";
  if Monitor.parse_errors mon <> 0 then
    failwith "bmp bench: parse errors in a clean feed";
  paper_vs_measured ~label:"BMP ingest (decode + rebuild)" ~paper:"n/a"
    ~measured:
      (Printf.sprintf "%.0fk msgs/s (%d routes reconstructed, %.2fs)"
         (float_of_int n_prefixes /. t_ing /. 1000.0)
         (Monitor.route_count mon ~mux:"bench")
         t_ing);
  (* Reconstruction lag: how far the station runs behind a mux
     replaying its full table flat out — the catch-up time for the
     whole feed, and per message. *)
  paper_vs_measured ~label:"reconstruction lag, full-table replay"
    ~paper:"station must keep up with the mux (§3 monitoring)"
    ~measured:
      (Printf.sprintf "%.2fs behind a %.2fs export (%.2f us/msg)"
         t_ing t_enc
         (t_ing /. float_of_int n_prefixes *. 1e6));
  let gc_mb =
    float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * Sys.word_size / 8)
    /. 1048576.0
  in
  match vm_hwm_mb () with
  | Some hwm ->
    paper_vs_measured ~label:"peak RSS (VmHWM, process-wide)" ~paper:"n/a"
      ~measured:(Printf.sprintf "%.0f MB (GC top heap %.0f MB)" hwm gc_mb)
  | None ->
    paper_vs_measured ~label:"peak heap (GC top_heap_words)" ~paper:"n/a"
      ~measured:(Printf.sprintf "%.0f MB" gc_mb)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks *)

let bechamel () =
  section "Microbenchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let test_rib =
    Test.make ~name:"rib-fill-1k-routes"
      (Staged.stage (fun () ->
           ignore (Memory.fill_rib ~peers:1 ~prefixes_per_peer:1000)))
  in
  let lookup_rib = Memory.fill_rib ~peers:1 ~prefixes_per_peer:10_000 in
  let test_lpm =
    Test.make ~name:"rib-lpm-lookup"
      (Staged.stage (fun () ->
           ignore (Rib.lookup lookup_rib (Ipv4.of_octets 80 0 39 5))))
  in
  let attrs =
    Peering_bgp.Attrs.make
      ~as_path:
        (Peering_bgp.As_path.of_asns [ Asn.of_int 47065; Asn.of_int 3356 ])
      ~next_hop:(Ipv4.of_octets 10 0 0 1) ()
  in
  let msg =
    Peering_bgp.Message.update_of_announce
      (Prefix.of_string_exn "184.164.224.0/24")
      attrs
  in
  let opts = Peering_bgp.Wire.default_opts in
  let test_wire =
    Test.make ~name:"wire-encode-decode"
      (Staged.stage (fun () ->
           ignore
             (Peering_bgp.Wire.decode_exn opts
                (Peering_bgp.Wire.encode opts msg))))
  in
  let w =
    Gen.generate
      { Gen.default_params with Gen.n_stub = 500; target_prefixes = 2000 }
  in
  let origin = List.hd w.Gen.stubs in
  let p = List.hd (As_graph.prefixes_of w.Gen.graph origin) in
  let test_prop =
    Test.make ~name:"propagate-~900as"
      (Staged.stage (fun () ->
           ignore
             (Propagation.propagate w.Gen.graph
                [ Propagation.announce origin p ])))
  in
  let tests = [ test_rib; test_lpm; test_wire; test_prop ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-24s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* SCHED: the multi-tenant scheduler at testbed scale — 100+ concurrent
   experiments on the default testbed, sustained update throughput
   through the fair-share batcher, p99 convergence under a skewed
   (chatty-tenant) load, and the isolation oracle. The default /19
   holds only 32 /24 leases, so the run donates the paper's §3 extra
   prefixes to the pool first. *)

module Scheduler = Peering_core.Scheduler
module Sched_stats = Peering_measure.Stats

let sched () =
  section
    "SCHED  Multi-tenant scheduler: 100+ concurrent experiments, fair-share \
     batching";
  let n_tenants =
    match Sys.getenv_opt "SCHED_BENCH_TENANTS" with
    | Some s -> int_of_string s
    | None -> 120
  in
  let tb = Testbed.build () in
  let eng = Testbed.engine tb in
  let rng = Rng.create 0x5ced in
  let sched =
    Scheduler.create ~vet:Peering_check.Admission.vet ~quota:4
      ~round_interval:0.5
      ~extra_supply:
        [ Prefix.of_string_exn "184.164.192.0/19";
          Prefix.of_string_exn "184.164.128.0/18";
          Prefix.of_string_exn "184.164.0.0/17"
        ]
      tb
  in
  let site_names = List.map Testbed.site_name (Testbed.sites tb) in
  (* admission: every proposal runs the full Check.check_specs XEXP
     passes against all already-running tenants *)
  let t0 = Unix.gettimeofday () in
  let admitted = ref 0 in
  for i = 0 to n_tenants - 1 do
    let sites =
      if Rng.bernoulli rng 0.5 then []
      else [ List.nth site_names (Rng.int rng (List.length site_names)) ]
    in
    let p = Scheduler.proposal ~sites (Printf.sprintf "tenant-%03d" i) in
    match Scheduler.admit sched p with
    | Scheduler.Admitted _ -> incr admitted
    | Scheduler.Rejected _ -> ()
  done;
  let admit_t = Unix.gettimeofday () -. t0 in
  paper_vs_measured ~label:"concurrent experiments admitted"
    ~paper:"100+ (paper §3)"
    ~measured:(Printf.sprintf "%d/%d in %.2fs wall" !admitted n_tenants admit_t);
  let tenants = Scheduler.tenants sched in
  let lease_of t = List.hd (Scheduler.leased_prefixes sched t) in
  (* sustained update throughput: an initial full-fanout announce wave,
     then re-announce waves with alternating path suffixes (no
     withdraw flaps, so the dampening filter stays out of the way),
     then one single-site withdraw / re-announce churn wave *)
  let ops = ref 0 in
  let req = function
    | Ok () -> incr ops
    | Error e -> failwith ("sched bench: request refused: " ^ e)
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun t -> req (Scheduler.request_announce sched ~tenant:t (lease_of t)))
    tenants;
  ignore (Scheduler.pump sched);
  for wave = 1 to 6 do
    List.iter
      (fun t ->
        let suffix =
          if wave mod 2 = 0 then []
          else
            match Scheduler.client sched t with
            | Some c -> (Client.experiment c).Experiment.private_asns
            | None -> []
        in
        req
          (Scheduler.request_announce sched ~tenant:t ~path_suffix:suffix
             (lease_of t)))
      tenants;
    ignore (Scheduler.pump sched)
  done;
  List.iter
    (fun t ->
      let site = List.hd site_names in
      req (Scheduler.request_withdraw sched ~tenant:t ~sites:[ site ] (lease_of t));
      req (Scheduler.request_announce sched ~tenant:t ~sites:[ site ] (lease_of t)))
    tenants;
  ignore (Scheduler.pump sched);
  let drive_t = Unix.gettimeofday () -. t0 in
  paper_vs_measured ~label:"sustained announce/withdraw throughput"
    ~paper:"n/a"
    ~measured:
      (Printf.sprintf "%d ops in %.2fs wall (%.0f ops/s, %d rounds)" !ops
         drive_t
         (float_of_int !ops /. drive_t)
         (Scheduler.rounds_run sched));
  (* p99 convergence under a skewed load: every tenant queues one
     update, ten chatty tenants queue 24 each; the engine fires the
     batching rounds on the virtual clock, so convergence is the
     fair-share queueing delay *)
  List.iter
    (fun t -> req (Scheduler.request_announce sched ~tenant:t (lease_of t)))
    tenants;
  List.iteri
    (fun i t ->
      if i < 10 then
        for _ = 1 to 24 do
          req (Scheduler.request_announce sched ~tenant:t (lease_of t))
        done)
    tenants;
  Engine.run_for eng 30.0;
  let convergence_samples =
    List.concat_map
      (fun (r : Peering_obs.Metrics.row) ->
        if Peering_obs.Metrics.row_name r = "core.sched.convergence_s" then
          match r.Peering_obs.Metrics.value with
          | Peering_obs.Metrics.Histogram_v { samples; _ } -> samples
          | _ -> []
        else [])
      (Peering_obs.Metrics.snapshot ())
  in
  paper_vs_measured ~label:"p99 convergence (virtual s, skewed load)"
    ~paper:"bounded by fair share"
    ~measured:
      (Printf.sprintf "%.2fs over %d grants"
         (Sched_stats.percentile 99.0 convergence_samples)
         (List.length convergence_samples));
  paper_vs_measured ~label:"isolation violations at full load" ~paper:"0"
    ~measured:(string_of_int (Scheduler.isolation_violations sched));
  if Scheduler.isolation_violations sched > 0 then
    failwith "sched bench: isolation violation detected"

(* ------------------------------------------------------------------ *)

let all_experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("f2", f2); ("e4", e4); ("t1", t1);
    ("a1", a1); ("a2", a2); ("a3", a3); ("a4", a4); ("a5", a5); ("a6", a6);
    ("prop", prop); ("chaos", chaos); ("chaos-campaign", chaos_campaign);
    ("mrt", mrt); ("sched", sched); ("bmp", bmp) ]

module Json = Peering_obs.Json
module Metrics = Peering_obs.Metrics
module Obs_report = Peering_measure.Obs_report

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_json acc = function
    | [ "--json" ] ->
      prerr_endline "--json requires a file argument";
      exit 2
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, args = extract_json [] args in
  let want_bechamel = List.mem "--bechamel" args in
  let selected = List.filter (fun a -> a <> "--bechamel") args in
  let to_run =
    if selected = [] then all_experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s\n" name;
            None)
        selected
  in
  Printf.printf "PEERING reproduction benchmark harness\n";
  collect_rows := json_file <> None;
  (* Stream the artifact row by row with the incremental writer instead
     of accumulating the whole document tree: a long run flushes each
     experiment as it finishes and never holds more than one
     experiment's rows in memory. The bytes are identical to the old
     whole-document emitter. *)
  let writer =
    match json_file with
    | None -> None
    | Some file ->
      let oc = open_out file in
      let w = Json.Writer.to_channel ~indent:2 oc in
      Json.Writer.begin_obj w;
      Json.Writer.key w "schema";
      Json.Writer.value w (Json.String "peering-bench/1");
      Json.Writer.key w "experiments";
      Json.Writer.begin_arr w;
      Some (file, oc, w)
  in
  List.iter
    (fun (name, f) ->
      Metrics.reset ();
      json_rows := [];
      f ();
      match writer with
      | None -> ()
      | Some (_, oc, w) ->
        Json.Writer.begin_obj w;
        Json.Writer.key w "id";
        Json.Writer.value w (Json.String name);
        Json.Writer.key w "rows";
        Json.Writer.begin_arr w;
        List.iter
          (fun (label, paper, measured) ->
            Json.Writer.value w
              (Json.Obj
                 [ ("label", Json.String label);
                   ("paper", Json.String paper);
                   ("measured", Json.String measured)
                 ]))
          (List.rev !json_rows);
        Json.Writer.end_arr w;
        (* Only the deterministic (non-volatile) metrics go into the
           artifact, so two identically-seeded runs are byte-identical;
           wall-clock figures stay on the human transcript. *)
        Json.Writer.key w "metrics";
        Json.Writer.value w (Obs_report.to_json ());
        Json.Writer.end_obj w;
        flush oc)
    to_run;
  (match writer with
  | None -> ()
  | Some (file, oc, w) ->
    Json.Writer.end_arr w;
    Json.Writer.end_obj w;
    Json.Writer.close w;
    output_char oc '\n';
    close_out oc;
    Printf.printf "\n[json] wrote %s\n" file);
  if want_bechamel then bechamel ();
  Printf.printf "\ndone.\n"
