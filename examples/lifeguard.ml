(* LIFEGUARD-style failure avoidance (paper §2, "Control of
   interdomain topology and routing").

   A transit AS on the paths toward our prefix fails silently (a
   "black hole": it still announces routes but drops traffic). We use
   PEERING's control of announcements to route around it with BGP
   poisoning: re-announcing our prefix with the broken AS inserted in
   the path makes that AS reject the route (loop detection), so the
   rest of the Internet finds paths that avoid it.

     dune exec examples/lifeguard.exe *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen
module Propagation = Peering_topo.Propagation
module Engine = Peering_sim.Engine
module Trace = Peering_sim.Trace
module Event = Peering_obs.Event

let () =
  print_endline "building testbed...";
  let t = Testbed.build () in
  (* Record typed events so the safety layer's rulings can be asserted
     by pattern matching instead of scraping rendered trace text. *)
  let trace = Trace.create () in
  Trace.attach trace ~clock:(fun () -> Engine.now (Testbed.engine t));
  (* Poisoning requires explicit vetting by the advisory board. *)
  let experiment =
    match
      Testbed.new_experiment t ~id:"lifeguard" ~owner:"lifeguard"
        ~description:"locate and route around persistent blackholes"
        ~may_poison:true ()
    with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"lifeguard" ~experiment () in
  Testbed.connect_client t client ~sites:[ "gatech01" ];
  let prefix = List.hd experiment.Experiment.prefixes in
  ignore (Client.announce client prefix);
  let baseline = Testbed.reach_count t prefix in
  Printf.printf "announced %s: reachable from %d ASes\n"
    (Prefix.to_string prefix) baseline;

  (* Find the transit AS that carries the most traffic toward us in
     the MIDDLE of inbound paths (not a stub's own access provider —
     single-homed customers of the broken AS are beyond rescue by
     definition). *)
  let w = Testbed.world t in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun stub ->
      match Testbed.route_from t stub prefix with
      | Some r -> (
        match r.Propagation.path with
        | _ :: hop :: _ :: _ ->
          (* second hop, with at least one more AS before the origin *)
          Hashtbl.replace counts (Asn.to_int hop)
            (1 + Option.value (Hashtbl.find_opt counts (Asn.to_int hop)) ~default:0)
        | _ -> ())
      | None -> ())
    w.Gen.stubs;
  let broken, carried =
    Hashtbl.fold
      (fun asn n ((_, best) as acc) -> if n > best then (asn, n) else acc)
      counts (0, 0)
  in
  let broken = Asn.of_int broken in
  Printf.printf "heaviest mid-path transit: %s (second hop for %d stubs)\n"
    (Asn.to_string broken) carried;

  (* The AS develops a silent blackhole: routes stay up, traffic dies.
     (We model the data-plane failure; control plane unchanged, so
     withdrawals won't save anyone — exactly LIFEGUARD's setting.) *)
  Printf.printf "%s now blackholes traffic silently...\n" (Asn.to_string broken);
  let victims =
    List.filter
      (fun stub ->
        match Testbed.route_from t stub prefix with
        | Some r -> List.exists (Asn.equal broken) r.Propagation.path
        | None -> false)
      w.Gen.stubs
  in
  Printf.printf "%d stub ASes send their traffic into the blackhole\n"
    (List.length victims);

  (* LIFEGUARD repair: withdraw and re-announce with the broken AS
     poisoned into the path. Its loop detection rejects the route; the
     Internet reroutes around it. *)
  Client.withdraw client prefix;
  let outcomes = Client.announce client ~path_suffix:[ broken ] prefix in
  List.iter
    (fun (site, r) ->
      Printf.printf "  poisoned re-announce via %s: %s\n" site
        (match r with
        | Ok () -> "accepted (experiment is vetted for poisoning)"
        | Error e -> "rejected: " ^ Safety.reason_to_string e))
    outcomes;
  let after = Testbed.reach_count t prefix in
  (* The poisoned ASN now appears in every path's *suffix* (that is
     the point); only the actually-traversed part — everything before
     PEERING's ASN — matters for rescue. *)
  let rec traversed = function
    | [] -> []
    | hop :: _ when Asn.equal hop Testbed.peering_asn -> []
    | hop :: rest -> hop :: traversed rest
  in
  let rescued =
    List.filter
      (fun stub ->
        match Testbed.path_from t stub prefix with
        | Some path ->
          not (List.exists (Asn.equal broken) (traversed path))
        | None -> false)
      victims
  in
  Printf.printf
    "after poisoning: reachable from %d ASes; %d of %d blackholed stubs\n\
     rerouted onto clean paths\n"
    after (List.length rescued) (List.length victims);
  let stranded = List.length victims - List.length rescued in
  if stranded > 0 then
    Printf.printf
      "(%d stubs are single-homed behind the broken AS — no alternate path\n\
       exists for them, poisoned or not)\n"
      stranded;

  (* The poisoning only worked because the experiment was vetted: every
     safety ruling on our announcements must be an acceptance. *)
  let verdicts =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.ev with
        | Event.Safety_verdict { client = "lifeguard"; prefix = p; verdict }
          when Prefix.equal p prefix -> Some verdict
        | _ -> None)
      (Trace.events trace)
  in
  let rejections =
    List.filter
      (function Event.Rejected _ -> true | Event.Accepted -> false)
      verdicts
  in
  Printf.printf
    "safety layer ruled %d times on %s: %d accepted, %d rejected\n"
    (List.length verdicts) (Prefix.to_string prefix)
    (List.length verdicts - List.length rejections)
    (List.length rejections);
  assert (verdicts <> []);
  assert (rejections = []);
  Trace.detach ();
  print_endline "done."
