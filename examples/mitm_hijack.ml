(* Man-in-the-middle interception study (paper §2, "Control of
   intradomain topology and routing": "a researcher is using PEERING
   to study man-in-the-middle hijacks, in which an attacker uses BGP
   to intercept traffic to inspect before forwarding it to the
   destination").

   We play both sides inside the testbed: a victim experiment
   announces its prefix; an attacker AS in the simulated Internet then
   announces the same prefix (MOAS hijack) while using a poisoned path
   to keep its own route to the victim intact — the classic
   Pilosov-Kapela interception.

     dune exec examples/mitm_hijack.exe *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen
module Propagation = Peering_topo.Propagation
module Engine = Peering_sim.Engine
module Trace = Peering_sim.Trace
module Event = Peering_obs.Event

let () =
  print_endline "building testbed...";
  let t = Testbed.build () in
  (* Typed trace buffer: assertions below pattern-match on the event
     payloads rather than searching rendered message text. *)
  let trace = Trace.create () in
  Trace.attach trace ~clock:(fun () -> Engine.now (Testbed.engine t));
  let experiment =
    match
      Testbed.new_experiment t ~id:"mitm-victim" ~owner:"security-lab"
        ~description:"victim prefix for interception measurement study" ()
    with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"victim" ~experiment () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
  let prefix = List.hd experiment.Experiment.prefixes in
  ignore (Client.announce client prefix);
  let w = Testbed.world t in
  let stubs = w.Gen.stubs in
  let clean = Testbed.reach_count t prefix in
  Printf.printf "victim announced %s: %d ASes have routes\n"
    (Prefix.to_string prefix) clean;

  (* The attacker: a mid-size transit AS. To intercept (not blackhole)
     it must keep a working path back to the victim, so it poisons the
     ASes on its own forward path — they reject the hijack and keep
     routing to the real origin, forming the return tunnel. *)
  let attacker = List.nth w.Gen.small_transit 7 in
  let return_path =
    match Testbed.route_from t attacker prefix with
    | Some r -> r.Propagation.path
    | None -> failwith "attacker has no route to victim"
  in
  Printf.printf "attacker %s; its path to the victim: %s\n"
    (Asn.to_string attacker)
    (String.concat " " (List.map Asn.to_string return_path));
  let poisoned =
    (* keep the PEERING-side tail out of the poison list *)
    List.filter (fun a -> Asn.to_int a < 4_000_000) return_path
  in
  Testbed.inject_external t ~origin:attacker ~path_suffix:poisoned prefix;

  (* Measure the interception. *)
  (match Testbed.result_for t prefix with
  | None -> failwith "no propagation result"
  | Some r ->
    let diverted =
      List.filter
        (fun stub ->
          match Propagation.route_at r stub with
          | Some rt ->
            (* routes derived from the attacker's announcement *)
            rt.Propagation.ann_index <> 0
            && not (Asn.equal stub attacker)
          | None -> false)
        stubs
    in
    Printf.printf "hijack live: %d of %d stub ASes now send traffic to the attacker\n"
      (List.length diverted) (List.length stubs);
    (* The return path must still work: the poisoned ASes rejected the
       hijack (loop detection), so they kept their routes to the true
       origin — the attacker hands intercepted traffic to the first of
       them and it flows home. *)
    (match poisoned with
    | first_hop :: _ -> (
      match Propagation.route_at r first_hop with
      | Some rt when rt.Propagation.ann_index = 0 ->
        Printf.printf
          "return path intact: poisoned %s still routes to the true origin\n\
           via %s — the attacker can inspect and forward (interception,\n\
           not blackholing)\n"
          (Asn.to_string first_hop)
          (String.concat " " (List.map Asn.to_string rt.Propagation.path))
      | _ ->
        print_endline "return path broken (blackhole, not interception)")
    | [] -> print_endline "nothing to poison: attacker adjacent to victim"));

  (* The victim fights back from PEERING: announce more-specifics is
     not possible (same /24 granularity), but it can localise the
     hijack by comparing vantage points: collector data shows paths
     diverging. *)
  let col = Testbed.collector t in
  Printf.printf "collector recorded %d control-plane events for analysis\n"
    (Peering_measure.Collector.n_entries col);
  Testbed.retract_external t ~origin:attacker prefix;
  Printf.printf "after takedown: %d ASes route to the victim again\n"
    (Testbed.reach_count t prefix);

  (* The victim's own announcements went through the safety layer and
     were accepted at every connected site; the attacker's hijack was
     injected in the simulated Internet and never produced a verdict. *)
  let victim_accepts, other_verdicts =
    List.fold_left
      (fun (acc, others) (e : Trace.event) ->
        match e.Trace.ev with
        | Event.Safety_verdict
            { client = "victim"; prefix = p; verdict = Event.Accepted }
          when Prefix.equal p prefix -> (acc + 1, others)
        | Event.Safety_verdict _ -> (acc, others + 1)
        | _ -> (acc, others))
      (0, 0) (Trace.events trace)
  in
  Printf.printf
    "typed trace: %d acceptances for the victim, %d other safety verdicts\n"
    victim_accepts other_verdicts;
  assert (victim_accepts >= 2) (* one per connected site *);
  assert (other_verdicts = 0);
  Trace.detach ();
  print_endline "done."
