(* PoiRoot-style root-cause analysis of interdomain path changes
   (paper §2: "PoiRoot made announcements to expose ASes' routing
   preferences ... also used PEERING to make controlled path changes,
   to use as ground truth for evaluation").

   We announce a prefix, snapshot the paths a set of vantage ASes use
   toward it, induce a controlled change (a transit AS fails), snapshot
   again, and run the localisation logic: the root cause must lie in
   the set of ASes that disappeared from every changed path. PEERING's
   ground truth (we know which AS we failed) grades the inference.

     dune exec examples/poiroot.exe *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen
module Engine = Peering_sim.Engine
module Trace = Peering_sim.Trace
module Event = Peering_obs.Event

let paths_from t vantages prefix =
  List.filter_map
    (fun v ->
      match Testbed.path_from t v prefix with
      | Some path -> Some (v, path)
      | None -> None)
    vantages

let () =
  print_endline "building testbed...";
  let t = Testbed.build () in
  (* Typed trace buffer: the ground-truth announcement is asserted by
     matching event payloads, not by searching rendered text. *)
  let trace = Trace.create () in
  Trace.attach trace ~clock:(fun () -> Engine.now (Testbed.engine t));
  let exp =
    match
      Testbed.new_experiment t ~id:"poiroot" ~owner:"poiroot"
        ~description:"root cause analysis of interdomain path changes" ()
    with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"poiroot" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
  let prefix = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client prefix);

  (* Vantage points: a spread of stubs. *)
  let w = Testbed.world t in
  let vantages = List.filteri (fun i _ -> i mod 10 = 0) w.Gen.stubs in
  let before = paths_from t vantages prefix in
  Printf.printf "baseline: %d vantage ASes with paths\n" (List.length before);

  (* Ground truth: fail a transit that carries several vantages. *)
  let carrier_counts = Hashtbl.create 64 in
  List.iter
    (fun (_, path) ->
      List.iter
        (fun hop ->
          if not (Asn.equal hop Testbed.peering_asn) then
            Hashtbl.replace carrier_counts (Asn.to_int hop)
              (1 + Option.value (Hashtbl.find_opt carrier_counts (Asn.to_int hop))
                     ~default:0))
        (List.tl path))
    before;
  let root_cause, _ =
    Hashtbl.fold
      (fun asn n ((_, best) as acc) -> if n > best then (asn, n) else acc)
      carrier_counts (0, 0)
  in
  let root_cause = Asn.of_int root_cause in
  Printf.printf "induced change: failing %s (ground truth)\n"
    (Asn.to_string root_cause);
  Testbed.set_down t root_cause true;
  let after = paths_from t vantages prefix in

  (* Localisation: for every vantage whose path changed, the suspects
     are the ASes that left its path; the root cause survives the
     intersection across vantages. *)
  let changed =
    List.filter_map
      (fun (v, old_path) ->
        match List.assoc_opt v after with
        | Some new_path when new_path <> old_path -> Some (v, old_path, new_path)
        | Some _ -> None
        | None -> Some (v, old_path, []))
      before
  in
  Printf.printf "%d vantages observed a path change\n" (List.length changed);
  let suspects_of (_, old_path, new_path) =
    List.filter (fun a -> not (List.exists (Asn.equal a) new_path)) old_path
  in
  let intersection =
    match changed with
    | [] -> []
    | first :: rest ->
      List.fold_left
        (fun acc case ->
          let s = suspects_of case in
          List.filter (fun a -> List.exists (Asn.equal a) s) acc)
        (suspects_of first) rest
  in
  Printf.printf "suspect set after intersection: {%s}\n"
    (String.concat ", " (List.map Asn.to_string intersection));
  let correct = List.exists (Asn.equal root_cause) intersection in
  Printf.printf "root cause %s %s the suspect set (%d candidate%s)\n"
    (Asn.to_string root_cause)
    (if correct then "isolated in" else "MISSED by")
    (List.length intersection)
    (if List.length intersection = 1 then "" else "s");
  Testbed.set_down t root_cause false;

  (* Ground truth rests on our controlled announcement actually being
     in the control plane: the safety layer must have accepted it at
     both connected sites and rejected nothing. *)
  let accepted =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.ev with
        | Event.Safety_verdict
            { client = "poiroot"; prefix = p; verdict = Event.Accepted }
          when Prefix.equal p prefix -> Some e.Trace.time
        | Event.Safety_verdict { verdict = Event.Rejected reason; _ } ->
          failwith ("safety layer rejected the controlled announcement: " ^ reason)
        | _ -> None)
      (Trace.events trace)
  in
  Printf.printf "typed trace: controlled announcement accepted %d times\n"
    (List.length accepted);
  assert (List.length accepted >= 2);
  Trace.detach ();
  print_endline "done."
